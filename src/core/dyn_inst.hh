/**
 * @file
 * DynInst: one dynamic (in-flight) instruction.  Carries the decoded
 * static instruction, the oracle outcome computed by execute-at-fetch,
 * rename state, timing state, and the per-design scheduler state used
 * by the instruction-queue implementations.
 */

#ifndef SCIQ_CORE_DYN_INST_HH
#define SCIQ_CORE_DYN_INST_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "branch/branch_predictor.hh"
#include "branch/ras.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace sciq {

/** Speculative fetch-state checkpoint taken after a control inst. */
struct FetchCheckpoint
{
    std::array<std::uint64_t, kNumArchRegs> regs;
    ReturnAddressStack::Snapshot ras;

    /**
     * Shared-fetch-stream resume point: the stream index of the first
     * instruction after this control inst on the correct path.  Only
     * meaningful when the core is fed by a SharedFetchStream
     * (core/fetch_stream.hh); a squash restores the stream cursor here.
     */
    std::size_t streamNext = 0;
};

/**
 * Membership of an instruction in one dependence chain (paper 3.2/3.3).
 * Each IQ entry tracks: chain id, current delay value, the chain head's
 * segment location, and whether the chain is in self-timed mode.
 */
struct ChainMembership
{
    ChainId chain = kNoChain;
    std::uint32_t gen = 0;   ///< chain-wire generation (reuse safety)
    std::uint64_t appliedSeq = 0;  ///< last chain-wire signal applied
    int delay = 0;
    int headSegment = 0;
    bool selfTimed = false;
    bool suspended = false;  ///< self-timing suspended (head missed)

    // Back-pointers into the segmented IQ's incremental scheduling
    // indices (DESIGN.md section 11); -1 = not on the list.
    int subIdx = -1;  ///< position in the chain's subscriber list
    int cdIdx = -1;   ///< position in the self-timed countdown list
};

/** Scheduler state for the segmented IQ. */
struct SegIqState
{
    ChainMembership memberships[2];
    int numMemberships = 0;
    ChainId headedChain = kNoChain;  ///< chain this inst is the head of
    std::uint32_t headedGen = 0;
    bool chainReleased = false;      ///< headed chain already freed
    int segment = -1;        ///< current segment index (0 = issue buffer)
    bool promoEligible = false;  ///< counted as a promotion candidate
};

/** Scheduler state for the ideal (monolithic CAM) IQ. */
struct IdealIqState
{
    int pendingOps = 0;   ///< unready gating sources at last update
    bool inQueue = false; ///< resident (waiter entries may be stale)
};

/** Scheduler state for the prescheduling IQ (Michaud-Seznec). */
struct PreschedState
{
    int line = -1;           ///< scheduling-array line, -1 = issue buffer
};

class DynInstPool;

class DynInst
{
  public:
    // ---- Static / oracle -------------------------------------------------
    Instruction staticInst;
    Addr pc = 0;
    SeqNum seq = kInvalidSeqNum;

    Addr oracleNextPc = 0;      ///< architected successor along this path
    bool oracleTaken = false;
    bool isHalt = false;
    Addr effAddr = 0;           ///< memory ops: effective address
    std::uint64_t memValue = 0; ///< load result / store data (oracle)
    std::uint64_t dstValue = 0; ///< architectural result (oracle)
    bool onWrongPath = false;   ///< fetched beyond a mispredicted branch

    // ---- Branch prediction ------------------------------------------------
    bool predictedTaken = false;
    Addr predictedNextPc = 0;
    bool mispredicted = false;  ///< prediction != oracle (resolves at exec)
    bool usedCondPredictor = false;
    HybridBranchPredictor::HistorySnapshot historySnap = 0;
    std::unique_ptr<FetchCheckpoint> checkpoint;  ///< control insts only

    // ---- Rename -----------------------------------------------------------
    std::array<RegIndex, 2> archSrc{kInvalidReg, kInvalidReg};
    RegIndex archDst = kInvalidReg;
    std::array<RegIndex, 2> physSrc{kInvalidReg, kInvalidReg};
    RegIndex physDst = kInvalidReg;
    RegIndex prevPhysDst = kInvalidReg;  ///< for squash undo

    // ---- Pipeline status ---------------------------------------------------
    bool dispatched = false;
    bool issued = false;
    bool completed = false;   ///< result produced; may commit
    bool squashed = false;
    bool committed = false;

    Cycle fetchCycle = 0;
    Cycle dispatchReadyCycle = 0;  ///< earliest dispatch (front-end depth)
    Cycle issueCycle = 0;
    Cycle completeCycle = 0;

    int lsqIndex = -1;
    std::int8_t lsqCls = -1;      ///< cached LSQ conflict class (-1 = stale)
    SeqNum lsqBlockSeq = 0;       ///< older store the cached class depends on
    bool addrReady = false;       ///< address generation finished
    bool memAccessDone = false;   ///< load data returned
    bool memAccessSent = false;
    bool loadForwarded = false;   ///< satisfied by store-to-load forward
    bool loadWasL1Hit = false;    ///< actual outcome (HMP training)
    bool loadWasDelayedHit = false;

    // ---- Predictor bookkeeping (paper 4.3/4.4) ------------------------------
    bool hmpPredictedHit = false;
    bool hmpUsed = false;
    bool lrpUsed = false;
    bool lrpPredictedLeft = false;
    bool hadTwoOutstanding = false;
    std::array<Cycle, 2> srcReadyCycle{0, 0};  ///< for LRP training

    // ---- IQ-design-specific scheduler state ---------------------------------
    SegIqState seg;
    IdealIqState ideal;
    PreschedState presched;
    int fifoId = -1;  ///< for the Palacharla FIFO design

    // Convenience forwarding helpers.
    OpClass opClass() const { return staticInst.opClass(); }
    bool isLoad() const { return staticInst.isLoad(); }
    bool isStore() const { return staticInst.isStore(); }
    bool isControl() const { return staticInst.isControl(); }

  private:
    friend class DynInstPtr;
    friend class DynInstPool;

    // Intrusive, non-atomic reference count.  DynInsts are confined to
    // the core that fetched them (never shared across threads), so the
    // atomic RMW traffic of std::shared_ptr would be pure overhead in
    // the fetch/rename hot path.
    std::uint32_t refs_ = 0;
    DynInstPool *pool_ = nullptr;  ///< owner; null = plain heap (tests)
};

/**
 * Intrusive smart pointer to a DynInst.  Semantics match
 * std::shared_ptr for the operations the pipeline uses (copy, move,
 * compare, deref) but the count is a plain integer and storage returns
 * to the owning DynInstPool (or the heap) when it reaches zero.
 */
class DynInstPtr
{
  public:
    constexpr DynInstPtr() noexcept = default;
    constexpr DynInstPtr(std::nullptr_t) noexcept {}

    DynInstPtr(const DynInstPtr &o) noexcept : p_(o.p_)
    {
        if (p_)
            ++p_->refs_;
    }

    DynInstPtr(DynInstPtr &&o) noexcept : p_(o.p_) { o.p_ = nullptr; }

    DynInstPtr &
    operator=(const DynInstPtr &o) noexcept
    {
        DynInstPtr(o).swap(*this);
        return *this;
    }

    DynInstPtr &
    operator=(DynInstPtr &&o) noexcept
    {
        DynInstPtr(std::move(o)).swap(*this);
        return *this;
    }

    DynInstPtr &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    ~DynInstPtr() { reset(); }

    void
    reset() noexcept
    {
        if (p_ && --p_->refs_ == 0)
            release(p_);
        p_ = nullptr;
    }

    void
    swap(DynInstPtr &o) noexcept
    {
        DynInst *t = p_;
        p_ = o.p_;
        o.p_ = t;
    }

    DynInst *get() const noexcept { return p_; }
    DynInst &operator*() const noexcept { return *p_; }
    DynInst *operator->() const noexcept { return p_; }
    explicit operator bool() const noexcept { return p_ != nullptr; }

    std::uint32_t useCount() const noexcept { return p_ ? p_->refs_ : 0; }

    friend bool
    operator==(const DynInstPtr &a, const DynInstPtr &b) noexcept
    {
        return a.p_ == b.p_;
    }
    friend bool
    operator!=(const DynInstPtr &a, const DynInstPtr &b) noexcept
    {
        return a.p_ != b.p_;
    }
    friend bool
    operator==(const DynInstPtr &a, std::nullptr_t) noexcept
    {
        return a.p_ == nullptr;
    }
    friend bool
    operator!=(const DynInstPtr &a, std::nullptr_t) noexcept
    {
        return a.p_ != nullptr;
    }

  private:
    friend class DynInstPool;
    friend DynInstPtr makeDynInst();

    /** Adopt a freshly constructed instruction (refs_ must be 0). */
    explicit DynInstPtr(DynInst *p) noexcept : p_(p)
    {
        if (p_)
            ++p_->refs_;
    }

    /** Return storage to the owning pool or the heap (dyn_inst.cc). */
    static void release(DynInst *p) noexcept;

    DynInst *p_ = nullptr;
};

/** Heap-allocate a standalone DynInst (unit tests, harnesses). */
inline DynInstPtr
makeDynInst()
{
    return DynInstPtr(new DynInst);
}

} // namespace sciq

#endif // SCIQ_CORE_DYN_INST_HH
