/**
 * @file
 * The static (decoded) form of one SRV instruction, plus the helpers the
 * pipeline uses to reason about operands and control flow.
 */

#ifndef SCIQ_ISA_INSTRUCTION_HH
#define SCIQ_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace sciq {

/**
 * One decoded instruction.  `imm` is held sign-extended; branch
 * immediates are in units of instructions relative to the branch's own
 * PC (target = pc + 4 * imm).
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    RegIndex rd = kInvalidReg;
    RegIndex rs1 = kInvalidReg;
    RegIndex rs2 = kInvalidReg;
    std::int64_t imm = 0;

    OpClass opClass() const { return opInfo(op).opClass; }

    bool isLoad() const { return opClass() == OpClass::MemRead; }
    bool isStore() const { return opClass() == OpClass::MemWrite; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isHalt() const { return opClass() == OpClass::Halt; }
    bool isNop() const { return opClass() == OpClass::Nop; }

    /** Any instruction that can redirect the PC. */
    bool
    isControl() const
    {
        OpClass c = opClass();
        return c == OpClass::Branch || c == OpClass::Jump;
    }

    /** Conditional branches (outcome depends on register values). */
    bool
    isCondBranch() const
    {
        switch (op) {
          case Opcode::BEQ:
          case Opcode::BNE:
          case Opcode::BLT:
          case Opcode::BGE:
          case Opcode::BLTU:
          case Opcode::BGEU:
            return true;
          default:
            return false;
        }
    }

    /** Control flow whose target comes from a register. */
    bool
    isIndirect() const
    {
        return op == Opcode::JR || op == Opcode::JALR;
    }

    /** JAL/JALR write a link register (call); JR with rs1=link is return. */
    bool isCall() const { return op == Opcode::JAL || op == Opcode::JALR; }
    bool isReturn() const { return op == Opcode::JR; }

    /**
     * Source architectural registers, kInvalidReg-padded.
     * Index 0 is the "left" operand and index 1 the "right" operand in
     * the sense used by the left/right operand predictor (paper 4.3).
     */
    std::array<RegIndex, 2>
    srcRegs() const
    {
        std::array<RegIndex, 2> s{kInvalidReg, kInvalidReg};
        switch (opInfo(op).format) {
          case Format::R:
          case Format::B:
            s[0] = rs1;
            s[1] = rs2;
            break;
          case Format::I:
          case Format::JR:
            s[0] = rs1;
            break;
          case Format::M:
            s[0] = rs1;              // base address
            if (isStore())
                s[1] = rs2;          // store data
            break;
          case Format::J:
          case Format::N:
            break;
        }
        // The hardwired zero register is never a real dependence.
        for (auto &r : s) {
            if (r == kZeroReg)
                r = kInvalidReg;
        }
        return s;
    }

    /** Destination architectural register, or kInvalidReg. */
    RegIndex
    dstReg() const
    {
        if (isStore() || opInfo(op).format == Format::B ||
            opInfo(op).format == Format::N || op == Opcode::J ||
            op == Opcode::JR) {
            return kInvalidReg;
        }
        return rd == kZeroReg ? kInvalidReg : rd;
    }

    /** Memory access size in bytes (loads/stores only). */
    unsigned
    memSize() const
    {
        switch (op) {
          case Opcode::LW:
          case Opcode::SW:
            return 4;
          case Opcode::LD:
          case Opcode::FLD:
          case Opcode::ST:
          case Opcode::FST:
            return 8;
          default:
            return 0;
        }
    }

    bool
    operator==(const Instruction &o) const
    {
        return op == o.op && rd == o.rd && rs1 == o.rs1 && rs2 == o.rs2 &&
               imm == o.imm;
    }
};

/** Size of one encoded instruction in simulated memory. */
constexpr Addr kInstBytes = 4;

} // namespace sciq

#endif // SCIQ_ISA_INSTRUCTION_HH
