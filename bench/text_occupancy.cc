/**
 * @file
 * Reproduces the segment-0 occupancy observations of section 6.1:
 * on mgrid the 32-entry segment 0 holds ~16 ready instructions (>25%
 * of all ready instructions in the queue); vortex and twolf keep >33%
 * of their ready instructions in segment 0 and use only a fraction of
 * the 512-entry queue.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sciq;
using namespace sciq::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv,
                               {"mgrid", "vortex", "twolf", "swim"},
                               {"iq_size"});
    const unsigned kIqSize = static_cast<unsigned>(
        args.raw.getInt("iq_size", 512));

    std::printf("Segment-0 occupancy, %u-entry segmented IQ "
                "(unlimited chains, base policy)\n\n",
                kIqSize);
    std::printf("%-9s | %10s %10s %12s %12s\n", "bench", "seg0 occ",
                "seg0 ready", "IQ occupancy", "IPC");
    hr('-', 62);

    SweepBatch batch(args);
    for (const auto &wl : args.workloads)
        batch.add(makeSegmentedConfig(kIqSize, -1, false, false, wl));
    batch.run();

    for (const auto &wl : args.workloads) {
        RunResult r = batch.next();
        std::printf("%-9s | %10.1f %10.1f %12.1f %12.3f\n", wl.c_str(),
                    r.seg0OccupancyAvg, r.seg0ReadyAvg, r.iqOccupancyAvg,
                    r.ipc);
    }

    std::printf("\nPaper reference: mgrid holds ~16 ready instructions "
                "in its 32-entry segment 0; vortex and\ntwolf use no "
                "more than ~136 of 512 queue entries and keep >33%% of "
                "ready instructions in segment 0.\n");
    finishBench(args);
    return 0;
}
