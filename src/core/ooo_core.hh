/**
 * @file
 * The out-of-order superscalar core model (paper section 5): 8-wide
 * fetch/dispatch/issue/commit, 15-cycle front end, register renaming,
 * ROB, LSQ, the Table 1 function units and memory hierarchy, and a
 * pluggable instruction queue (ideal / segmented / prescheduled / FIFO).
 *
 * Execution is oracle-at-fetch: instructions execute architecturally on
 * a speculative register file as they are fetched, including down
 * mispredicted paths (wrong-path cache pollution and squash behaviour
 * are real).  The timing model schedules those pre-computed operations.
 */

#ifndef SCIQ_CORE_OOO_CORE_HH
#define SCIQ_CORE_OOO_CORE_HH

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "branch/branch_predictor.hh"
#include "branch/btb.hh"
#include "branch/hit_miss_predictor.hh"
#include "branch/left_right_predictor.hh"
#include "branch/ras.hh"
#include "common/circular_queue.hh"
#include "common/stats.hh"
#include "core/commit_observer.hh"
#include "core/dyn_inst.hh"
#include "core/dyn_inst_pool.hh"
#include "core/fu_pool.hh"
#include "core/lsq.hh"
#include "core/rename.hh"
#include "iq/iq_base.hh"
#include "isa/exec.hh"
#include "isa/functional_core.hh"
#include "isa/program.hh"
#include "isa/sparse_memory.hh"
#include "mem/hierarchy.hh"

namespace sciq {

class SharedFetchStream;

/** Which instruction-queue design drives the core. */
enum class IqKind
{
    Ideal,
    Segmented,
    Prescheduled,
    Fifo
};

const char *iqKindName(IqKind kind);

struct CoreParams
{
    IqKind iqKind = IqKind::Segmented;
    IqParams iq{};

    unsigned fetchWidth = 8;
    unsigned maxBranchesPerFetch = 3;
    unsigned dispatchWidth = 8;
    unsigned commitWidth = 8;
    unsigned fetchToDecode = 10;
    unsigned decodeToDispatch = 5;

    unsigned robSize = 0;     ///< 0 = 3 x IQ entries (paper section 5)
    unsigned lsqSize = 0;     ///< 0 = ROB size
    unsigned numPhysRegs = 0; ///< 0 = arch + ROB + slack

    FuPoolParams fu{};
    BranchPredictorParams bp{};
    HierarchyParams mem{};
    unsigned btbEntries = 4096;
    unsigned btbAssoc = 4;
    unsigned rasEntries = 32;
    unsigned hmpEntries = 4096;
    unsigned lrpEntries = 4096;

    bool modelWrongPath = true;

    /**
     * Deadlock watchdog: abort run() with a DeadlockError (carrying a
     * pipeline state dump) if no instruction commits for this many
     * consecutive cycles.  0 disables.  The default window is far above
     * any legitimate stall (a full-ROB chain of L2 misses resolves in
     * thousands of cycles, not a million) so real runs never trip it.
     */
    Cycle watchdogCycles = 1'000'000;

    /**
     * Test-only fault: starting at this cycle the commit stage retires
     * nothing, forever.  0 disables.  Proves the watchdog detection
     * path fires (DESIGN.md §13).
     */
    Cycle faultCommitStallAt = 0;

    /**
     * Pre-install the program's code lines in the L1I (and the L2),
     * modelling measurement from a warm checkpoint as the paper does.
     */
    bool warmICache = true;

    /** Resolve the 0-defaults into concrete values. */
    void finalize();
};

class OooCore
{
  public:
    OooCore(const Program &program, const CoreParams &params);
    ~OooCore();

    /** Advance one cycle. */
    void tick();

    /**
     * Run until the program HALTs, `max_insts` commit, or `max_cycles`
     * elapse.  @return committed instructions during this call.
     */
    std::uint64_t run(std::uint64_t max_insts = ~0ULL,
                      Cycle max_cycles = ~0ULL);

    bool halted() const { return haltCommitted; }
    Cycle cycles() const { return curCycle; }
    std::uint64_t committedCount() const
    {
        return static_cast<std::uint64_t>(committedInsts.value());
    }
    double ipc() const
    {
        return curCycle ? committedInsts.value() / static_cast<double>(
                              curCycle) : 0.0;
    }

    /** Committed (architectural) register state, for validation. */
    const std::array<std::uint64_t, kNumArchRegs> &commitRegs() const
    {
        return committedRegs;
    }

    /** Committed memory image, for validation. */
    const SparseMemory &commitMemory() const { return commitMem; }

    /** Diagnostic snapshot of pipeline state (stall debugging). */
    void debugDump(std::ostream &os) const;

    /**
     * debugDump plus LSQ occupancy and the IQ design's internal state -
     * the artifact a DeadlockError carries (DESIGN.md §13).
     */
    void dumpPipelineState(std::ostream &os) const;

    /**
     * Seed architectural state before the first cycle - used by the
     * fast-forward facility to start timing simulation mid-program,
     * as the paper does from 20-billion-instruction checkpoints.
     */
    void seedState(const std::array<std::uint64_t, kNumArchRegs> &regs,
                   const SparseMemory &memory_image, Addr start_pc);

    /**
     * Feed correct-path fetch from a shared oracle stream (batched
     * lockstep simulation, DESIGN.md §15).  Must be attached after
     * seedState() and before the first tick(); the stream must have
     * been constructed from the same architectural state this core was
     * seeded with.  Wrong-path fetch still executes locally.
     */
    void attachFetchStream(SharedFetchStream *stream);

    /**
     * Trim floor for the attached stream: entries below the number of
     * committed-since-seed instructions can never be re-read (squash
     * resume points are always younger than the commit point).
     */
    std::uint64_t streamTrimFloor() const { return committedCount(); }

    /** Next fetch PC (stream seeding; equals start PC before tick 0). */
    Addr fetchProgramCounter() const { return fetchPc; }

    /** Attach a pipeline-event observer (tracing); may be null. */
    void setObserver(CommitObserver *obs) { observer = obs; }

    /**
     * Hook invoked at the end of every tick(), after all stages have
     * run.  Used by the invariant auditor; may be empty.  Kept as a
     * std::function so the sim layer can observe the core without the
     * core library depending on it.
     */
    using CycleHook = std::function<void(OooCore &, Cycle)>;
    void setCycleHook(CycleHook hook) { cycleHook = std::move(hook); }

    IqBase &iqUnit() { return *iq; }
    Lsq &lsqUnit() { return *lsq; }
    MemHierarchy &memHierarchy() { return mem; }
    HybridBranchPredictor &branchPredictor() { return bp; }
    Btb &btb() { return btbUnit; }
    ReturnAddressStack &returnAddressStack() { return ras; }
    HitMissPredictor &hitMissPredictor() { return hmp; }
    LeftRightPredictor &leftRightPredictor() { return lrp; }
    const CoreParams &coreParams() const { return params; }

    stats::Group &statGroup() { return statsGroup; }

    // Top-level statistics.
    stats::Scalar cyclesStat;
    stats::Scalar committedInsts;
    stats::Scalar fetchedInsts;
    stats::Scalar wrongPathInsts;
    stats::Scalar squashes;
    stats::Scalar mispredictsResolved;
    stats::Scalar committedLoads;
    stats::Scalar committedStores;
    stats::Scalar committedBranches;
    stats::Scalar committedCondBranches;
    stats::Average robOccupancy;
    stats::Distribution robOccupancyDist;

  private:
    friend class Auditor;
    /** ExecContext over the speculative fetch state. */
    class FetchContext : public ExecContext
    {
      public:
        explicit FetchContext(OooCore &core_) : core(core_) {}

        std::uint64_t readReg(RegIndex r) override
        {
            return core.specRegs[r];
        }

        void
        writeReg(RegIndex r, std::uint64_t v) override
        {
            core.specRegs[r] = v;
            lastValue = v;
            wroteReg = true;
        }

        std::uint64_t readMem(Addr addr, unsigned size) override;

        void writeMem(Addr, unsigned, std::uint64_t) override
        {
            // Stores become visible through the speculative store
            // queue; memory proper is written at commit.
        }

        std::uint64_t lastValue = 0;
        bool wroteReg = false;

      private:
        OooCore &core;
    };

    friend class FetchContext;

    void fetchStage();
    void dispatchStage();
    void issueStage();
    void writebackStage();
    void commitStage();
    void doSquash();

    bool coreBusy() const;

    /** Predict the successor PC for a control instruction at fetch. */
    void predictControl(const DynInstPtr &inst);

    /** I-cache line availability tracking for the fetch stage. */
    bool lineReady(Addr pc);
    void touchLine(Addr pc);

    void markLoadComplete(const DynInstPtr &inst, Cycle cycle);
    void markStoreReady(const DynInstPtr &inst, Cycle cycle);

    /** Owned copy so callers may pass temporaries safely. */
    Program program;
    CoreParams params;
    stats::Group statsGroup;

    // Declared before every container that can hold a DynInstPtr so
    // the pool outlives all references into it.
    DynInstPool instPool;

    MemHierarchy mem;
    SparseMemory commitMem;
    std::array<std::uint64_t, kNumArchRegs> committedRegs{};

    RenameMap rename;
    Scoreboard scoreboard;
    std::vector<Cycle> physReadyCycle;

    FuPool fu;
    HybridBranchPredictor bp;
    Btb btbUnit;
    ReturnAddressStack ras;
    HitMissPredictor hmp;
    LeftRightPredictor lrp;

    std::unique_ptr<IqBase> iq;
    std::unique_ptr<Lsq> lsq;
    CircularQueue<DynInstPtr> rob;

    // Speculative fetch state.
    std::array<std::uint64_t, kNumArchRegs> specRegs{};
    SharedFetchStream *fetchStream = nullptr;  ///< shared oracle stream
    std::size_t streamIdx = 0;  ///< cursor: next correct-path entry
    Addr fetchPc;
    bool fetchHalted = false;   ///< HALT seen on the (spec) fetch path
    bool fetchInvalid = false;  ///< fetch ran off the program image
    bool wrongPathMode = false;
    Cycle fetchResumeCycle = 0;
    std::deque<DynInstPtr> storeQueueSpec;

    // Line-granular presence counters over storeQueueSpec (64-byte
    // lines, hashed into 256 buckets).  A fetch-path load whose lines
    // all count zero provably overlaps no in-flight store and reads
    // committed memory directly; collisions only cost a spurious
    // queue walk, never a wrong value.
    static constexpr unsigned kSpecLineShift = 6;
    static constexpr unsigned kSpecLineBuckets = 256;
    std::array<std::uint16_t, kSpecLineBuckets> specStoreLines{};
    void trackSpecStore(const DynInst &st, int delta);

    std::deque<DynInstPtr> frontEndQueue;
    std::size_t frontEndCap;

    // I-cache line tracking.
    std::unordered_map<Addr, Cycle> lineReadyAt;  ///< kCycleNever = pending

    // Direct-mapped memo of lines already observed ready.  A ready
    // line can never become pending again (lineReadyAt values only
    // ever transition toward ready and curCycle is monotone), so a
    // memo hit is final and skips the map lookup on the fetch path.
    static constexpr std::size_t kReadyMemoSize = 64;
    std::array<Addr, kReadyMemoSize> readyLineMemo;
    Addr icLineMask = 0;        ///< ~(lineBytes - 1)
    unsigned icLineShift = 0;   ///< log2(lineBytes)

    // Completion schedule: a cycle-bucketed ring indexed by
    // (cycle & wbMask).  Capacity is a power of two strictly greater
    // than the largest FU latency, so a bucket is always drained
    // before any in-flight op can wrap around onto it.
    std::vector<std::vector<DynInstPtr>> wbRing;
    std::size_t wbMask = 0;
    std::vector<DynInstPtr> wbScratch;  ///< drain buffer (reused)
    unsigned inFlightExec = 0;

    Cycle curCycle = 0;
    Cycle lastCommitCycle = 0;  ///< watchdog: last cycle that retired
    SeqNum nextSeq = 1;
    bool haltCommitted = false;
    unsigned issuedThisCycleCount = 0;
    CycleHook cycleHook;

    // Pending squash (oldest resolving mispredict this cycle).
    DynInstPtr pendingSquashBranch;

    CommitObserver *observer = nullptr;
};

} // namespace sciq

#endif // SCIQ_CORE_OOO_CORE_HH
