file(REMOVE_RECURSE
  "CMakeFiles/fig2_relative_performance.dir/fig2_relative_performance.cc.o"
  "CMakeFiles/fig2_relative_performance.dir/fig2_relative_performance.cc.o.d"
  "fig2_relative_performance"
  "fig2_relative_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_relative_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
