# Empty compiler generated dependencies file for test_hmp_lrp.
# This may be replaced when dependencies are built.
