#include "shard.hh"

#include <algorithm>
#include <cstdlib>
#include <list>
#include <sstream>
#include <thread>

#include <poll.h>
#include <unistd.h>

#include "common/errors.hh"
#include "common/logging.hh"
#include "sim/checkpoint.hh"
#include "sim/fault_injector.hh"
#include "sim/job_exec.hh"
#include "sim/journal.hh"
#include "sim/worker_proto.hh"

namespace sciq {

std::uint64_t
shardHash(const std::string &sweep_key)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : sweep_key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

unsigned
shardOf(const std::string &sweep_key, unsigned shards)
{
    if (shards <= 1)
        return 0;
    return static_cast<unsigned>(shardHash(sweep_key) % shards);
}

std::string
configSpec(const SimConfig &config)
{
    std::ostringstream os;
    os << sweepKey(config)
       << " wrong_path=" << config.core.modelWrongPath
       << " resize_interval=" << config.core.iq.resizeInterval
       << " watchdog_cycles=" << config.core.watchdogCycles
       << " validate=" << config.validate << " audit=" << config.audit
       << " audit_panic=" << config.auditPanic
       << " bb_cache=" << config.bbCache
       << " iq_soa=" << config.core.iq.soaLayout;
    // Architected fault knobs travel with the job so negative tests
    // behave the same distributed as local; budgeted injector faults
    // stay worker-local by design.
    if (config.core.faultCommitStallAt > 0)
        os << " fault_commit_stall=" << config.core.faultCommitStallAt;
    if (config.core.iq.auditInjectOverPromote)
        os << " fault_overpromote=1";
    return os.str();
}

SimConfig
configFromSpec(const std::string &spec)
{
    ConfigMap map;
    std::istringstream is(spec);
    std::string token;
    while (is >> token) {
        if (!map.parseLine(token))
            throw ConfigError("malformed config-spec token '" + token +
                              "'");
    }
    SimConfig config;
    config.apply(map);
    return config;
}

// ---------------------------------------------------------------------
// JobBoard

JobBoard::JobBoard(const std::vector<std::string> &keys,
                   const std::vector<char> &done, const Options &options)
    : options_(options)
{
    if (options_.shards == 0)
        options_.shards = 1;
    jobs_.resize(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        jobs_[i].key = keys[i];
        jobs_[i].shard = shardOf(keys[i], options_.shards);
        if (i < done.size() && done[i]) {
            jobs_[i].done = true;
            ++doneCount_;
        }
    }
}

unsigned
JobBoard::shardOfJob(std::size_t index) const
{
    return jobs_[index].shard;
}

JobBoard::Grant
JobBoard::lease(int worker, unsigned shard, Clock::time_point now,
                std::size_t &index)
{
    if (allDone())
        return Grant::Drained;

    auto grant = [&](std::size_t i) {
        jobs_[i].active.push_back(
            {worker, now, now + std::chrono::milliseconds(options_.leaseMs)});
        ++leases_;
        index = i;
        return Grant::Leased;
    };

    // 1. Pending work from the worker's own shard, in input order.
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const Job &j = jobs_[i];
        if (!j.done && j.active.empty() && j.shard == shard)
            return grant(i);
    }

    // 2. Steal from the shard with the most pending work so straggler
    //    shards drain fastest.
    std::vector<std::size_t> pendingPerShard(options_.shards, 0);
    bool anyPending = false;
    for (const Job &j : jobs_) {
        if (!j.done && j.active.empty()) {
            ++pendingPerShard[j.shard];
            anyPending = true;
        }
    }
    if (anyPending) {
        const unsigned victim = static_cast<unsigned>(std::distance(
            pendingPerShard.begin(),
            std::max_element(pendingPerShard.begin(),
                             pendingPerShard.end())));
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            const Job &j = jobs_[i];
            if (!j.done && j.active.empty() && j.shard == victim) {
                ++steals_;
                return grant(i);
            }
        }
    }

    // 3. Straggler hedging: duplicate the longest-outstanding lease
    //    once it is old enough, as long as this worker does not
    //    already hold it.  First result wins; the loser is discarded.
    const auto oldEnough =
        now - std::chrono::milliseconds(options_.duplicateAfterMs);
    std::size_t best = jobs_.size();
    Clock::time_point bestStart{};
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const Job &j = jobs_[i];
        if (j.done || j.active.empty())
            continue;
        Clock::time_point oldest = j.active.front().start;
        bool mine = false;
        for (const Lease &l : j.active) {
            oldest = std::min(oldest, l.start);
            mine = mine || l.worker == worker;
        }
        if (mine || oldest > oldEnough)
            continue;
        if (best == jobs_.size() || oldest < bestStart) {
            best = i;
            bestStart = oldest;
        }
    }
    if (best != jobs_.size()) {
        ++duplicates_;
        return grant(best);
    }
    return Grant::Wait;
}

bool
JobBoard::complete(std::size_t index)
{
    Job &j = jobs_[index];
    if (j.done)
        return false;
    j.done = true;
    j.active.clear();
    ++doneCount_;
    return true;
}

void
JobBoard::drop(std::size_t index, std::vector<std::size_t> &requeued,
               std::vector<std::size_t> &failed)
{
    Job &j = jobs_[index];
    ++j.drops;
    if (j.drops > options_.maxLeaseDrops) {
        j.done = true;
        ++doneCount_;
        failed.push_back(index);
    } else {
        ++requeues_;
        requeued.push_back(index);
    }
}

void
JobBoard::workerLost(int worker, std::vector<std::size_t> &requeued,
                     std::vector<std::size_t> &failed)
{
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        Job &j = jobs_[i];
        if (j.done || j.active.empty())
            continue;
        const std::size_t before = j.active.size();
        j.active.erase(
            std::remove_if(j.active.begin(), j.active.end(),
                           [worker](const Lease &l) {
                               return l.worker == worker;
                           }),
            j.active.end());
        // Only an orphaned job (no surviving duplicate lease) counts
        // as a drop; a lost duplicate is covered by the original.
        if (before != j.active.size() && j.active.empty())
            drop(i, requeued, failed);
    }
}

void
JobBoard::expireLeases(Clock::time_point now,
                       std::vector<std::size_t> &requeued,
                       std::vector<std::size_t> &failed)
{
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        Job &j = jobs_[i];
        if (j.done || j.active.empty())
            continue;
        const std::size_t before = j.active.size();
        j.active.erase(std::remove_if(j.active.begin(), j.active.end(),
                                      [now](const Lease &l) {
                                          return l.deadline <= now;
                                      }),
                       j.active.end());
        if (before != j.active.size() && j.active.empty())
            drop(i, requeued, failed);
    }
}

// ---------------------------------------------------------------------
// Coordinator

namespace {

struct Conn
{
    Conn(int id_, int fd) : id(id_), ch(fd) {}

    int id;
    LineChannel ch;
    bool helloed = false;
    bool dead = false;
    unsigned shard = 0;
    std::string name;
    LineChannel::Clock::time_point lastPing =
        LineChannel::Clock::now();
};

} // namespace

std::vector<RunResult>
serveSweep(const std::vector<SimConfig> &configs,
           const ServeOptions &options, ServeStats *stats_out)
{
    using Clock = JobBoard::Clock;

    for (const SimConfig &cfg : configs) {
        if (cfg.deadlineSec > 0.0) {
            throw ConfigError(
                "distributed sweeps cannot serve deadline_sec jobs: "
                "wall-clock deadlines are not deterministic across "
                "workers (run them with a local sweep instead)");
        }
    }

    const std::size_t total = configs.size();
    std::vector<RunResult> results(total);
    std::vector<std::string> keys(total), specs(total);
    for (std::size_t i = 0; i < total; ++i) {
        keys[i] = sweepKey(configs[i]);
        specs[i] = configSpec(configs[i]);
    }

    // Resume exactly like SweepRunner::run: journaled-ok entries whose
    // (index, key) still match are merged up front and never re-leased.
    std::vector<char> have(total, 0);
    std::unique_ptr<ResultJournal> journal;
    if (!options.journal.empty()) {
        applyJournal(options.journal, keys, results, have);
        journal = std::make_unique<ResultJournal>(options.journal,
                                                  options.syncJournal);
    }

    JobBoard::Options boardOptions;
    boardOptions.shards = options.shards == 0 ? 1 : options.shards;
    boardOptions.leaseMs = options.leaseMs;
    boardOptions.maxLeaseDrops = options.maxLeaseDrops;
    boardOptions.duplicateAfterMs = options.duplicateAfterMs;
    JobBoard board(keys, have, boardOptions);

    ServeStats stats;
    std::size_t done = 0;
    for (const char h : have)
        done += h != 0;

    auto finishJob = [&](std::size_t index, RunResult r) {
        if (journal)
            journal->record(index, keys[index], r);
        results[index] = std::move(r);
        ++done;
        if (options.progress)
            options.progress(done, total, results[index]);
        // Chaos hook: die at the worst possible instant — the result
        // is journaled durably but not yet acked, so the restarted
        // coordinator must resume from the journal while the worker
        // redelivers and gets deduped.
        if (options.faults && options.faults->takeCoordAbort()) {
            if (options.abortExits)
                ::_exit(137);
            throw ResourceError(
                "injected coordinator abort after journaling job " +
                std::to_string(index));
        }
    };

    // Repeated lease drops contain the job as a Failed row through the
    // §13 taxonomy, exactly like an in-process job that kept throwing.
    auto failDropped = [&](const std::vector<std::size_t> &failed) {
        for (const std::size_t index : failed) {
            ++stats.boardFailed;
            job_exec::Classified c;
            c.code = ErrorCode::Resource;
            c.transient = true;
            c.message = "worker lease dropped " +
                        std::to_string(options.maxLeaseDrops + 1) +
                        " times (workers died or stalled)";
            warn("job %zu (%s): %s", index, keys[index].c_str(),
                 c.message.c_str());
            finishJob(index, job_exec::failedResult(
                                 configs[index], c,
                                 options.maxLeaseDrops + 1));
        }
    };

    const Endpoint ep = parseEndpoint(options.endpoint);
    const int lfd = listenEndpoint(ep);
    if (options.boundPortOut)
        options.boundPortOut->store(boundPort(lfd));
    std::list<Conn> conns;
    int nextConnId = 0;
    unsigned nextShard = 0;
    auto lastWorkerSeen = Clock::now();
    bool draining = false;
    Clock::time_point drainStart{};

    auto dropConn = [&](Conn &conn) {
        conn.dead = true;
        std::vector<std::size_t> requeued, failed;
        board.workerLost(conn.id, requeued, failed);
        failDropped(failed);
        conn.ch.close();
    };

    // Handle every complete line one connection has buffered; returns
    // false when the connection should be discarded.  Replies go
    // through queueLine: a peer that stopped reading cannot block the
    // pump, it just accumulates toward the pending cap and is dropped.
    auto processConn = [&](Conn &conn) {
        std::string line;
        while (conn.ch.popLine(line)) {
            Message msg;
            if (!decodeMessage(line, msg))
                continue;  // torn line: same tolerance as the journal
            switch (msg.type) {
              case MsgType::Hello: {
                Message reply;
                if (msg.proto != kWorkerProtoVersion) {
                    ++stats.rejectedWorkers;
                    reply.type = MsgType::Reject;
                    reply.reason =
                        "protocol version mismatch (coordinator " +
                        std::to_string(kWorkerProtoVersion) +
                        ", worker " + std::to_string(msg.proto) + ")";
                    conn.ch.sendLine(encodeMessage(reply));
                    return false;
                }
                conn.helloed = true;
                conn.name = msg.worker;
                conn.shard = nextShard++ % boardOptions.shards;
                ++stats.workersSeen;
                reply.type = MsgType::Welcome;
                reply.proto = kWorkerProtoVersion;
                reply.shard = static_cast<int>(conn.shard);
                reply.shards = boardOptions.shards;
                reply.jobs = total;
                reply.leaseMs = options.leaseMs;
                reply.heartbeatMs = options.heartbeatMs;
                if (!conn.ch.queueLine(encodeMessage(reply)))
                    return false;
                break;
              }
              case MsgType::LeaseReq: {
                if (!conn.helloed) {
                    Message reply;
                    reply.type = MsgType::Reject;
                    reply.reason = "lease_req before hello";
                    conn.ch.queueLine(encodeMessage(reply));
                    return false;
                }
                Message reply;
                std::size_t index = 0;
                if (draining) {
                    // Stop-drain: no new leases, but keep the worker
                    // alive — it will reconnect into the restarted
                    // coordinator and resume from there.
                    reply.type = MsgType::Wait;
                    reply.waitMs = 200;
                    if (!conn.ch.queueLine(encodeMessage(reply)))
                        return false;
                    break;
                }
                switch (board.lease(conn.id, conn.shard, Clock::now(),
                                    index)) {
                  case JobBoard::Grant::Leased:
                    reply.type = MsgType::Lease;
                    reply.index = index;
                    reply.key = keys[index];
                    reply.spec = specs[index];
                    break;
                  case JobBoard::Grant::Wait:
                    reply.type = MsgType::Wait;
                    reply.waitMs = 100;
                    break;
                  case JobBoard::Grant::Drained:
                    reply.type = MsgType::Drain;
                    break;
                }
                if (!conn.ch.queueLine(encodeMessage(reply)))
                    return false;
                break;
              }
              case MsgType::Result: {
                if (!conn.helloed)
                    return false;
                if (msg.index >= total || keys[msg.index] != msg.key) {
                    warn("ignoring result for unknown job %zu (%s)",
                         msg.index, msg.key.c_str());
                    break;
                }
                const std::size_t index = msg.index;
                if (board.complete(index))
                    finishJob(index, std::move(msg.result));
                else
                    ++stats.duplicateResults;
                // Ack even the duplicate: the worker must learn its
                // copy is no longer needed, whichever lease won.  The
                // journal row (fsync'd under syncJournal) is already
                // durable by the time finishJob returned.
                Message ack;
                ack.type = MsgType::ResultAck;
                ack.index = index;
                if (!conn.ch.queueLine(encodeMessage(ack)))
                    return false;
                break;
              }
              case MsgType::Ping: {
                Message pong;
                pong.type = MsgType::Pong;
                pong.seq = msg.seq;
                if (!conn.ch.queueLine(encodeMessage(pong)))
                    return false;
                break;
              }
              case MsgType::Pong:
                // Liveness is any-received-byte; nothing else to do.
                break;
              default:
                // Coordinator-bound streams never carry coordinator
                // replies; ignore rather than kill the worker.
                break;
            }
        }
        return !conn.dead;
    };

    auto cleanup = [&]() {
        conns.clear();
        ::close(lfd);
        if (ep.kind == Endpoint::Kind::Unix)
            ::unlink(ep.path.c_str());
    };

    // One poll + pump + process sweep over the fleet, shared by the
    // main loop and the post-completion drain.
    auto serviceConns = [&](bool accepting) {
        std::vector<pollfd> pfds;
        if (accepting)
            pfds.push_back({lfd, POLLIN, 0});
        for (Conn &conn : conns) {
            short events = POLLIN;
            if (conn.ch.pendingOut() > 0)
                events |= POLLOUT;
            pfds.push_back({conn.ch.fd(), events, 0});
        }
        ::poll(pfds.data(), pfds.size(), 50);

        if (accepting && (pfds[0].revents & POLLIN)) {
            // One accept per POLLIN wakeup: the listen fd stays
            // readable while the backlog is non-empty, so the next
            // loop iteration picks up any further pending workers.
            const int fd = acceptConn(lfd);
            if (fd >= 0)
                conns.emplace_back(nextConnId++, fd);
        }

        const auto now = LineChannel::Clock::now();
        std::size_t slot = accepting ? 1 : 0;
        for (auto it = conns.begin(); it != conns.end(); ++slot) {
            Conn &conn = *it;
            bool alive = true;
            // A conn accepted above has no pfds entry yet; it is
            // pumped on the next iteration.
            if (slot < pfds.size() &&
                (pfds[slot].revents & (POLLIN | POLLHUP | POLLERR)))
                alive = conn.ch.pump();
            if (options.heartbeatMs > 0 && alive) {
                if (conn.ch.msSinceRecv() >
                    options.heartbeatMs * kHeartbeatTimeoutFactor) {
                    // Half-open or frozen peer: detected in a few
                    // heartbeat intervals instead of a lease length.
                    ++stats.heartbeatDrops;
                    warn("dropping silent connection %d (%s): no bytes "
                         "for %ums",
                         conn.id, conn.name.c_str(),
                         conn.ch.msSinceRecv());
                    alive = false;
                } else if (conn.helloed &&
                           now - conn.lastPing >
                               std::chrono::milliseconds(
                                   options.heartbeatMs)) {
                    conn.lastPing = now;
                    Message ping;
                    ping.type = MsgType::Ping;
                    alive = conn.ch.queueLine(encodeMessage(ping));
                }
            }
            if (alive) {
                alive = processConn(conn) && conn.ch.flushQueued() &&
                        conn.ch.alive();
            }
            if (!alive) {
                dropConn(conn);
                it = conns.erase(it);
            } else {
                ++it;
            }
        }
    };

    try {
        // Main loop: poll the listen socket and every worker, expire
        // leases, and stop once the board is fully drained — or the
        // stop flag flips, in which case lease handout stops, in-flight
        // results are collected for drainGraceMs, and the (valid,
        // fsync'd) journal is left for the restarted coordinator.
        while (!board.allDone()) {
            if (!draining && options.stop && options.stop->load()) {
                draining = true;
                stats.interrupted = true;
                drainStart = Clock::now();
                inform("stop requested: draining %zu in-flight jobs, "
                       "%zu remaining overall",
                       conns.size(), board.remaining());
            }
            if (draining &&
                Clock::now() - drainStart >
                    std::chrono::milliseconds(options.drainGraceMs))
                break;

            serviceConns(/*accepting=*/true);

            if (!draining) {
                std::vector<std::size_t> requeued, failed;
                board.expireLeases(Clock::now(), requeued, failed);
                failDropped(failed);

                if (!conns.empty())
                    lastWorkerSeen = Clock::now();
                else if (Clock::now() - lastWorkerSeen >
                         std::chrono::milliseconds(
                             options.workerGraceMs)) {
                    throw ResourceError(
                        "no workers connected for " +
                        std::to_string(options.workerGraceMs) +
                        "ms with " + std::to_string(board.remaining()) +
                        " jobs remaining");
                }
            }
        }

        // Drain: answer every remaining lease_req with Drain and give
        // stragglers a moment to hear it before tearing down.  Keep
        // accepting: a worker reconnecting to redeliver a result we
        // already have (its ack was lost to a crash) gets a duplicate
        // ack and a clean Drain instead of a vanished listener.
        if (!stats.interrupted) {
            const auto drainDeadline =
                Clock::now() + std::chrono::milliseconds(2000);
            while (!conns.empty() && Clock::now() < drainDeadline)
                serviceConns(/*accepting=*/true);
        }
    } catch (...) {
        cleanup();
        throw;
    }
    cleanup();

    stats.leases = board.leases();
    stats.steals = board.steals();
    stats.duplicates = board.duplicates();
    stats.requeues = board.requeues();
    if (stats_out)
        *stats_out = stats;
    return results;
}

// ---------------------------------------------------------------------
// Worker

namespace {

/**
 * One worker connection: the channel plus its heartbeat pinger thread.
 * The pinger only ever *sends* (the main thread owns every read), so
 * the two threads meet solely inside LineChannel's send mutex.  A busy
 * worker keeps the coordinator's liveness clock fresh through these
 * pings even while a multi-minute job blocks its read loop.
 */
struct WorkerLink
{
    LineChannel ch;
    unsigned heartbeatMs = 0;

    explicit WorkerLink(int fd) : ch(fd) {}

    ~WorkerLink()
    {
        stopPinger_.store(true, std::memory_order_relaxed);
        if (pinger_.joinable())
            pinger_.join();
    }

    void
    startPinger()
    {
        if (heartbeatMs == 0)
            return;
        pinger_ = std::thread([this] {
            std::uint64_t seq = 0;
            const auto slice = std::chrono::milliseconds(
                std::min(heartbeatMs, 50u));
            auto next = LineChannel::Clock::now() +
                        std::chrono::milliseconds(heartbeatMs);
            while (!stopPinger_.load(std::memory_order_relaxed)) {
                if (LineChannel::Clock::now() < next) {
                    std::this_thread::sleep_for(slice);
                    continue;
                }
                next += std::chrono::milliseconds(heartbeatMs);
                Message ping;
                ping.type = MsgType::Ping;
                ping.seq = ++seq;
                if (!ch.sendLine(encodeMessage(ping)))
                    return;  // channel closed or dead: stop quietly
            }
        });
    }

    /**
     * Receive the next non-heartbeat message, answering pings along
     * the way.  False on EOF/error/timeout, and on a coordinator
     * frozen past the heartbeat deadline — which is how a half-open
     * TCP connection is detected in seconds rather than a full
     * replyTimeout.
     */
    bool
    recvReply(Message &msg, unsigned timeout_ms)
    {
        const auto deadline = LineChannel::Clock::now() +
                              std::chrono::milliseconds(timeout_ms);
        for (;;) {
            std::string line;
            if (ch.recvLine(line, 100)) {
                Message m;
                if (!decodeMessage(line, m))
                    continue;  // torn line: skip, like the journal
                if (m.type == MsgType::Ping) {
                    Message pong;
                    pong.type = MsgType::Pong;
                    pong.seq = m.seq;
                    ch.sendLine(encodeMessage(pong));
                    continue;
                }
                if (m.type == MsgType::Pong)
                    continue;
                msg = std::move(m);
                return true;
            }
            if (!ch.alive())
                return false;
            if (heartbeatMs > 0 &&
                ch.msSinceRecv() > heartbeatMs * kHeartbeatTimeoutFactor)
                return false;
            if (timeout_ms > 0 && LineChannel::Clock::now() >= deadline)
                return false;
        }
    }

    /** Send `res` and wait for its ResultAck. */
    bool
    deliver(const Message &res, unsigned timeout_ms)
    {
        if (!ch.sendLine(encodeMessage(res)))
            return false;
        Message msg;
        while (recvReply(msg, timeout_ms)) {
            if (msg.type == MsgType::ResultAck && msg.index == res.index)
                return true;
            // Anything else mid-ack is unexpected; keep waiting.
        }
        return false;
    }

  private:
    std::atomic<bool> stopPinger_{false};
    std::thread pinger_;
};

} // namespace

WorkerReport
runWorker(const WorkerOptions &options)
{
    WorkerReport report;
    std::string artifactDir = options.artifactDir;
    if (artifactDir.empty()) {
        if (const char *env = std::getenv("SCIQ_ARTIFACT_DIR"))
            artifactDir = env;
    }

    Endpoint ep;
    try {
        ep = parseEndpoint(options.endpoint);
    } catch (const std::exception &e) {
        report.error = e.what();
        return report;
    }

    // One warm-state cache per worker process, disk-backed when every
    // worker points at the same ckpt_dir: the cross-process producer
    // election (checkpoint.cc) makes N workers execute one warm-up
    // total.  Survives reconnects.
    std::shared_ptr<CheckpointCache> cache;
    try {
        if (!options.ckptDir.empty())
            cache = std::make_shared<CheckpointCache>(options.ckptDir);
    } catch (const std::exception &e) {
        report.error = e.what();
        return report;
    }

    // A finished-but-unacked result survives connection loss here and
    // is redelivered after the re-handshake; the coordinator's
    // first-result-wins merge dedups if the original did land.
    bool havePending = false;
    Message pending;

    // Consecutive connection failures without real progress (an acked
    // result or a granted lease).  Reset on progress, so a long sweep
    // tolerates any number of coordinator restarts.
    unsigned failures = 0;
    const std::uint64_t jitterSeed = shardHash(options.name) | 1;
    bool everConnected = false;

    for (;;) {
        // ----- connect + handshake (one attempt per loop iteration)
        std::unique_ptr<WorkerLink> link;
        bool lost = false;
        std::string lostWhat;
        try {
            link = std::make_unique<WorkerLink>(
                connectEndpoint(ep, options.connectTimeoutMs));
        } catch (const std::exception &e) {
            report.error = e.what();
            return report;
        }

        Message hello;
        hello.type = MsgType::Hello;
        hello.proto = kWorkerProtoVersion;
        hello.worker = options.name;
        Message msg;
        if (!link->ch.sendLine(encodeMessage(hello)) ||
            !link->recvReply(msg, options.replyTimeoutMs)) {
            // Coordinator vanished mid-handshake (torn Welcome): a
            // contained, retryable condition — not a hang.
            lost = true;
            lostWhat = "no handshake reply from coordinator";
        } else if (msg.type == MsgType::Reject) {
            // Permanent: reconnecting with the same hello cannot help.
            report.error = "rejected by coordinator: " + msg.reason;
            return report;
        } else if (msg.type != MsgType::Welcome ||
                   msg.proto != kWorkerProtoVersion) {
            report.error = "unexpected handshake reply";
            return report;
        } else {
            link->heartbeatMs = msg.heartbeatMs;
            link->startPinger();
            if (everConnected)
                ++report.reconnects;
            everConnected = true;
        }

        // ----- redeliver the unacked result from the previous link
        if (!lost && havePending) {
            if (link->deliver(pending, options.replyTimeoutMs)) {
                havePending = false;
                ++report.redelivered;
                failures = 0;
            } else {
                lost = true;
                lostWhat = "redelivery failed";
            }
        }

        // ----- lease-execute-report until drained or disconnected
        while (!lost) {
            Message req;
            req.type = MsgType::LeaseReq;
            if (!link->ch.sendLine(encodeMessage(req))) {
                lost = true;
                lostWhat = "coordinator connection lost";
                break;
            }
            if (!link->recvReply(msg, options.replyTimeoutMs)) {
                lost = true;
                lostWhat = "no lease reply from coordinator";
                break;
            }
            if (msg.type == MsgType::Drain) {
                report.drained = true;
                return report;
            }
            if (msg.type == MsgType::Wait) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(msg.waitMs));
                continue;
            }
            if (msg.type == MsgType::Reject) {
                report.error = "rejected by coordinator: " + msg.reason;
                return report;
            }
            if (msg.type != MsgType::Lease)
                continue;
            failures = 0;

            RunResult r;
            try {
                SimConfig cfg = configFromSpec(msg.spec);
                cfg.faults = options.faults;
                if (cfg.fastForward > 0 && cache)
                    cfg.ckptCache = cache;
                r = job_exec::executeWithRetry(
                    cfg, msg.key, msg.index, options.maxRetries,
                    options.backoffMs, artifactDir);
            } catch (...) {
                // A spec the worker cannot even parse still produces a
                // contained Failed row, so the job cannot loop forever
                // through requeues.
                job_exec::Classified c =
                    job_exec::classify(std::current_exception());
                SimConfig blank;
                r = job_exec::failedResult(blank, c, 1);
            }
            ++report.jobsRun;
            if (r.ckptRestored)
                ++report.restored;

            if (options.faults && options.faults->takeWorkerAbort()) {
                // Chaos hook: die in place of reporting, exactly like
                // a worker killed mid-job — the coordinator must
                // requeue the outstanding lease.
                report.aborted = true;
                if (options.abortExits)
                    ::_exit(137);
                link->ch.close();
                return report;
            }

            pending.type = MsgType::Result;
            pending.index = msg.index;
            pending.key = msg.key;
            pending.result = std::move(r);
            havePending = true;

            if (options.faults && options.faults->takeConnDrop()) {
                // Chaos hook: sever right at the send — the pending
                // result must survive the reconnect and be redelivered.
                link->ch.close();
                lost = true;
                lostWhat = "injected connection drop";
                break;
            }

            if (!link->deliver(pending, options.replyTimeoutMs)) {
                lost = true;
                lostWhat = "result ack never arrived";
                break;
            }
            havePending = false;
            failures = 0;
        }

        // ----- connection lost: bounded, jittered reconnect
        link.reset();  // joins the pinger, closes the fd
        ++failures;
        if (failures > options.maxReconnects) {
            report.error = lostWhat + " (gave up after " +
                           std::to_string(failures - 1) +
                           " reconnect attempts)";
            return report;
        }
        const unsigned delay = job_exec::backoffDelayMs(
            options.reconnectBackoffMs, failures,
            options.reconnectBackoffCapMs, jitterSeed);
        warn("worker %s: %s; reconnecting in %ums (attempt %u/%u)",
             options.name.c_str(), lostWhat.c_str(), delay, failures,
             options.maxReconnects);
        if (delay) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }
    }
}

} // namespace sciq
