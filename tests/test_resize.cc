/** @file Tests for dynamic segment resizing (paper section 7). */

#include <gtest/gtest.h>

#include "iq/segmented_iq.hh"
#include "iq_harness.hh"
#include "sim/simulator.hh"

using namespace sciq;
using namespace sciq::test;

namespace {

struct ResizeFixture : public ::testing::Test
{
    ResizeFixture() : scoreboard(128), rec(scoreboard)
    {
        params.numEntries = 16;
        params.segmentSize = 4;
        params.issueWidth = 4;
        params.maxChains = -1;
        params.dynamicResize = true;
        params.resizeInterval = 4;
    }

    std::unique_ptr<SegmentedIq>
    makeIq()
    {
        return std::make_unique<SegmentedIq>(params, scoreboard, fu,
                                             &hmp, &lrp);
    }

    IqParams params;
    Scoreboard scoreboard;
    FuPool fu;
    HitMissPredictor hmp{64};
    LeftRightPredictor lrp{64};
    IssueRecorder rec;
    Cycle cycle = 0;
};

} // namespace

TEST_F(ResizeFixture, StartsMinimalAndGrowsUnderPressure)
{
    auto iq = makeIq();
    EXPECT_EQ(iq->activeSegmentCount(), 1u);

    // Fill the active segment with unready instructions.
    scoreboard.clearReady(intReg(1));
    SeqNum s = 1;
    for (; s <= 4; ++s) {
        auto ld = makeInst(s, Opcode::LD, intReg(20 + s), intReg(1));
        ASSERT_TRUE(iq->canInsert(ld));
        scoreboard.clearReady(ld->physDst);
        iq->insert(ld, cycle);
    }
    // Capacity exhausted at one active segment.
    auto extra = makeInst(s, Opcode::LD, intReg(27), intReg(1));
    EXPECT_FALSE(iq->canInsert(extra));

    // A resize check re-enables a segment.
    for (int i = 0; i < 6; ++i)
        iq->tick(++cycle, true);
    EXPECT_GE(iq->activeSegmentCount(), 2u);
    EXPECT_TRUE(iq->canInsert(extra));
    EXPECT_GT(iq->resizeGrows.value(), 0.0);
}

TEST_F(ResizeFixture, ShrinksOnlyWhenTopSegmentEmpty)
{
    auto iq = makeIq();
    scoreboard.clearReady(intReg(1));
    // Grow to 2 segments by pressure.
    SeqNum s = 1;
    for (; s <= 4; ++s) {
        auto ld = makeInst(s, Opcode::LD, intReg(20 + s), intReg(1));
        scoreboard.clearReady(ld->physDst);
        iq->insert(ld, cycle);
    }
    for (int i = 0; i < 6; ++i)
        iq->tick(++cycle, true);
    ASSERT_GE(iq->activeSegmentCount(), 2u);

    // Drain everything; after the shrink threshold it gates back down.
    scoreboard.setReady(intReg(1));
    for (SeqNum q = 1; q <= 4; ++q)
        scoreboard.setReady(intReg(20 + q));
    for (int i = 0; i < 40 && iq->occupancy() > 0; ++i) {
        iq->issueSelect(cycle, rec.acceptAll());
        iq->tick(++cycle, false);
    }
    ASSERT_EQ(iq->occupancy(), 0u);
    for (int i = 0; i < 12; ++i)
        iq->tick(++cycle, false);
    EXPECT_EQ(iq->activeSegmentCount(), 1u);
    EXPECT_GT(iq->resizeShrinks.value(), 0.0);
}

TEST_F(ResizeFixture, EnergyProxyTracksActiveSegments)
{
    auto iq = makeIq();
    for (int i = 0; i < 10; ++i)
        iq->tick(++cycle, false);
    // One active segment x 10 cycles.
    EXPECT_DOUBLE_EQ(iq->segmentCyclesActive.value(), 10.0);
    EXPECT_DOUBLE_EQ(iq->activeSegmentsAvg.value(), 1.0);
}

TEST(ResizeIntegration, CorrectnessUnchangedWithResizing)
{
    SimConfig cfg = makeSegmentedConfig(256, 64, true, true, "equake");
    cfg.core.iq.dynamicResize = true;
    cfg.core.iq.resizeInterval = 64;
    cfg.wl.iterations = 250;
    RunResult r = runSim(cfg);
    EXPECT_TRUE(r.haltedCleanly);
    EXPECT_TRUE(r.validated);
}

TEST(ResizeIntegration, LowOccupancyCodeKeepsSegmentsGated)
{
    SimConfig cfg = makeSegmentedConfig(512, 128, true, true, "gcc");
    cfg.core.iq.dynamicResize = true;
    cfg.wl.iterations = 2000;
    cfg.validate = false;
    Simulator sim(cfg);
    RunResult r = sim.run();
    ASSERT_TRUE(r.haltedCleanly);
    auto &seg = dynamic_cast<SegmentedIq &>(sim.core().iqUnit());
    EXPECT_LT(seg.activeSegmentsAvg.value(), 6.0);  // of 16
}

TEST(ResizeIntegration, WindowHungryCodeGrowsToFullSize)
{
    SimConfig cfg = makeSegmentedConfig(512, 128, true, true, "swim");
    cfg.core.iq.dynamicResize = true;
    cfg.wl.iterations = 2500;
    cfg.validate = false;
    Simulator sim(cfg);
    RunResult r = sim.run();
    ASSERT_TRUE(r.haltedCleanly);
    auto &seg = dynamic_cast<SegmentedIq &>(sim.core().iqUnit());
    EXPECT_GT(seg.activeSegmentsAvg.value(), 8.0);
}
