#include "exec.hh"

#include "isa/exec_impl.hh"

namespace sciq {

ExecResult
execute(const Instruction &inst, Addr pc, ExecContext &xc)
{
    return executeImpl(inst, pc, xc);
}

} // namespace sciq
