file(REMOVE_RECURSE
  "CMakeFiles/sciq_isa.dir/asm_builder.cc.o"
  "CMakeFiles/sciq_isa.dir/asm_builder.cc.o.d"
  "CMakeFiles/sciq_isa.dir/assembler.cc.o"
  "CMakeFiles/sciq_isa.dir/assembler.cc.o.d"
  "CMakeFiles/sciq_isa.dir/codec.cc.o"
  "CMakeFiles/sciq_isa.dir/codec.cc.o.d"
  "CMakeFiles/sciq_isa.dir/disassembler.cc.o"
  "CMakeFiles/sciq_isa.dir/disassembler.cc.o.d"
  "CMakeFiles/sciq_isa.dir/exec.cc.o"
  "CMakeFiles/sciq_isa.dir/exec.cc.o.d"
  "CMakeFiles/sciq_isa.dir/functional_core.cc.o"
  "CMakeFiles/sciq_isa.dir/functional_core.cc.o.d"
  "CMakeFiles/sciq_isa.dir/opcodes.cc.o"
  "CMakeFiles/sciq_isa.dir/opcodes.cc.o.d"
  "CMakeFiles/sciq_isa.dir/program.cc.o"
  "CMakeFiles/sciq_isa.dir/program.cc.o.d"
  "CMakeFiles/sciq_isa.dir/sparse_memory.cc.o"
  "CMakeFiles/sciq_isa.dir/sparse_memory.cc.o.d"
  "libsciq_isa.a"
  "libsciq_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciq_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
