/**
 * @file
 * The structured error taxonomy (DESIGN.md §13): code/name mapping,
 * the SimError field contract, and the classification each subclass
 * carries (code, transient flag, context).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/errors.hh"

using namespace sciq;

namespace {

TEST(ErrorCodes, NamesRoundTrip)
{
    for (ErrorCode code : {ErrorCode::None, ErrorCode::Config,
                           ErrorCode::Workload, ErrorCode::Checkpoint,
                           ErrorCode::Deadlock, ErrorCode::Invariant,
                           ErrorCode::Resource, ErrorCode::Internal}) {
        EXPECT_EQ(errorCodeFromName(errorCodeName(code)), code);
    }
}

TEST(ErrorCodes, NamesAreStableJsonTokens)
{
    // The names are persisted in journals and bench JSON; renaming one
    // is a format break, so pin them.
    EXPECT_STREQ(errorCodeName(ErrorCode::None), "none");
    EXPECT_STREQ(errorCodeName(ErrorCode::Config), "config");
    EXPECT_STREQ(errorCodeName(ErrorCode::Workload), "workload");
    EXPECT_STREQ(errorCodeName(ErrorCode::Checkpoint), "checkpoint");
    EXPECT_STREQ(errorCodeName(ErrorCode::Deadlock), "deadlock");
    EXPECT_STREQ(errorCodeName(ErrorCode::Invariant), "invariant");
    EXPECT_STREQ(errorCodeName(ErrorCode::Resource), "resource");
    EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
}

TEST(ErrorCodes, UnknownNameMapsToInternal)
{
    EXPECT_EQ(errorCodeFromName("quantum-flux"), ErrorCode::Internal);
    EXPECT_EQ(errorCodeFromName(""), ErrorCode::Internal);
}

TEST(SimErrorBase, CarriesCodeContextAndSweepKey)
{
    SimError e(ErrorCode::Deadlock, "stuck", "rob dump here", false);
    EXPECT_EQ(e.code(), ErrorCode::Deadlock);
    EXPECT_STREQ(e.what(), "stuck");
    EXPECT_EQ(e.context(), "rob dump here");
    EXPECT_FALSE(e.transient());
    EXPECT_TRUE(e.sweepKey().empty());

    e.setSweepKey("workload=swim iq=segmented");
    EXPECT_EQ(e.sweepKey(), "workload=swim iq=segmented");
}

TEST(SimErrorBase, IsCatchableAsStdException)
{
    try {
        throw WorkloadError("unknown workload 'zork'");
    } catch (const std::exception &e) {
        EXPECT_NE(std::string(e.what()).find("zork"), std::string::npos);
    }
}

TEST(SimErrorSubclasses, CodesAndTransience)
{
    EXPECT_EQ(ConfigError("x").code(), ErrorCode::Config);
    EXPECT_FALSE(ConfigError("x").transient());

    EXPECT_EQ(WorkloadError("x").code(), ErrorCode::Workload);
    EXPECT_FALSE(WorkloadError("x").transient());

    // Checkpoint errors pick their transience per throw site: I/O and
    // corruption are retryable, semantic mismatches are not.
    EXPECT_EQ(CheckpointError("x").code(), ErrorCode::Checkpoint);
    EXPECT_FALSE(CheckpointError("x").transient());
    EXPECT_TRUE(CheckpointError("x", /*transient=*/true).transient());

    EXPECT_EQ(ResourceError("x").code(), ErrorCode::Resource);
    EXPECT_TRUE(ResourceError("x").transient());

    EXPECT_EQ(InvariantError("x").code(), ErrorCode::Invariant);
    EXPECT_EQ(InvariantError("x", "dump").context(), "dump");
}

TEST(SimErrorSubclasses, DeadlockDistinguishesWatchdogFromTimeout)
{
    DeadlockError wedged("no commit for 1000000 cycles", "pipeline dump");
    EXPECT_EQ(wedged.code(), ErrorCode::Deadlock);
    EXPECT_FALSE(wedged.isTimeout());
    EXPECT_EQ(wedged.context(), "pipeline dump");

    DeadlockError slow("deadline exceeded", "dump", /*wall_clock=*/true);
    EXPECT_TRUE(slow.isTimeout());
}

TEST(SimErrorSubclasses, CatchableAsSimError)
{
    // The sweep runner's single catch site depends on every subclass
    // reaching a `const SimError &` handler with its classification.
    try {
        throw DeadlockError("msg", "dump");
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Deadlock);
        EXPECT_EQ(e.context(), "dump");
    }
}

} // namespace
