#include "audit.hh"

#include <algorithm>
#include <sstream>

#include "common/errors.hh"
#include "common/logging.hh"
#include "core/ooo_core.hh"
#include "iq/ideal_iq.hh"
#include "iq/segmented_iq.hh"

namespace sciq {

namespace {

/** Warn about the first few violations even when not panicking. */
constexpr int kMaxWarnings = 5;

} // namespace

Auditor::Auditor(bool panic_on_violation)
    : panicOnViolation_(panic_on_violation), group_("audit")
{
    group_.addScalar("cycles_audited", &cyclesAudited,
                     "cycles the invariant auditor ran");
    group_.addScalar("negative_delay", &negativeDelay,
                     "chain-member delay values below zero");
    group_.addScalar("segment_overflow", &segmentOverflow,
                     "segment occupancy above capacity");
    group_.addScalar("promotion_bound", &promotionBound,
                     "promotions above the prev-cycle free bound");
    group_.addScalar("issue_over_width", &issueOverWidth,
                     "cycles issuing more than the issue width");
    group_.addScalar("wire_delivery", &wireDelivery,
                     "chain-wire signals missed past their arrival cycle");
    group_.addScalar("pool_bound", &poolBound,
                     "cycles with leaked DynInstPool slots");
    group_.addScalar("occ_index", &occIndex,
                     "O(1) occupancy counters disagreeing with a rescan");
    group_.addScalar("promo_index", &promoIndex,
                     "promotion-candidate indices disagreeing with a rescan");
    group_.addScalar("sub_index", &subIndex,
                     "chain subscriber indices disagreeing with a rescan");
    group_.addScalar("countdown_index", &countdownIndex,
                     "self-timed countdown lists disagreeing with a rescan");
    group_.addScalar("ready_index", &readyIndex,
                     "ideal ready-list entries disagreeing with a rescan");
    group_.addScalar("wb_ring_bound", &wbRingBound,
                     "writeback-ring population diverging from in-flight");
}

void
Auditor::attach(OooCore &core)
{
    core.statGroup().addChild(&group_);
    core.iqUnit().setAuditTracking(true);
    core.setCycleHook([this](OooCore &c, Cycle cycle) {
        auditCycle(c, cycle);
    });
}

void
Auditor::violation(stats::Scalar &counter, const char *invariant,
                   Cycle cycle, const std::string &detail)
{
    counter.inc();
    ++total_;
    if (panicOnViolation_) {
        throw InvariantError("audit: invariant '" + std::string(invariant) +
                                 "' violated at cycle " +
                                 std::to_string(cycle),
                             detail);
    }
    if (total_ <= kMaxWarnings) {
        warn("audit: invariant '%s' violated at cycle %llu\n%s",
             invariant, static_cast<unsigned long long>(cycle),
             detail.c_str());
    }
}

void
Auditor::auditCycle(OooCore &core, Cycle cycle)
{
    cyclesAudited.inc();

    if (core.issuedThisCycleCount > core.params.iq.issueWidth) {
        std::ostringstream os;
        core.debugDump(os);
        violation(issueOverWidth, "issue <= issueWidth", cycle,
                  "issued " + std::to_string(core.issuedThisCycleCount) +
                      " > width " +
                      std::to_string(core.params.iq.issueWidth) + "\n" +
                      os.str());
    }

    // Everything holding a DynInstPtr is bounded: the ROB, the front-end
    // queue, and completed-but-squashed instructions draining through
    // the writeback queue (themselves once-ROB residents).  Twice the
    // ROB plus the front end is a deliberately generous but *finite*
    // ceiling: a storage leak (e.g. a container pinning recycled slots)
    // grows monotonically and crosses it quickly.
    const std::size_t pool_cap =
        2 * static_cast<std::size_t>(core.params.robSize) +
        core.frontEndCap;
    if (core.instPool.liveCount() > pool_cap) {
        std::ostringstream os;
        core.debugDump(os);
        violation(poolBound, "pool live count <= window bound", cycle,
                  "live " + std::to_string(core.instPool.liveCount()) +
                      " > bound " + std::to_string(pool_cap) + "\n" +
                      os.str());
    }

    // The writeback ring holds exactly the issued-but-not-yet-written-
    // back instructions (squashed ones included; they drain normally).
    std::size_t wb_pop = 0;
    for (const auto &bucket : core.wbRing)
        wb_pop += bucket.size();
    if (wb_pop != core.inFlightExec) {
        violation(wbRingBound, "writeback ring population == in-flight",
                  cycle,
                  "ring holds " + std::to_string(wb_pop) +
                      " but inFlightExec=" +
                      std::to_string(core.inFlightExec));
    }

    if (auto *seg = dynamic_cast<SegmentedIq *>(core.iq.get()))
        auditSegmented(*seg, cycle);
    else if (auto *ideal = dynamic_cast<IdealIq *>(core.iq.get()))
        auditIdeal(*ideal, cycle);
}

void
Auditor::auditSegmented(SegmentedIq &iq, Cycle cycle)
{
    const unsigned n = static_cast<unsigned>(iq.segments.size());

    auto segDump = [&iq](unsigned k) {
        std::ostringstream os;
        iq.dumpSegment(os, k);
        return os.str();
    };

    for (unsigned k = 0; k < n; ++k) {
        const auto &seg = iq.segments[k];

        if (seg.size() > iq.params.segmentSize) {
            violation(segmentOverflow, "segment occupancy <= capacity",
                      cycle,
                      "segment " + std::to_string(k) + " holds " +
                          std::to_string(seg.size()) + " > " +
                          std::to_string(iq.params.segmentSize) + "\n" +
                          segDump(k));
        }

        for (const auto &inst : seg) {
            if (inst->seg.segment != static_cast<int>(k)) {
                violation(segmentOverflow,
                          "entry segment field matches its segment", cycle,
                          "seq " + std::to_string(inst->seq) +
                              " records segment " +
                              std::to_string(inst->seg.segment) +
                              " but lives in " + std::to_string(k) + "\n" +
                              segDump(k));
            }

            for (int m = 0; m < inst->seg.numMemberships; ++m) {
                const ChainMembership &mem = inst->seg.memberships[m];

                if (mem.delay < 0) {
                    violation(negativeDelay, "chain delay >= 0", cycle,
                              "seq " + std::to_string(inst->seq) +
                                  " membership " + std::to_string(m) +
                                  " delay " + std::to_string(mem.delay) +
                                  "\n" + segDump(k));
                }

                // Chain-wire exactness: every signal is applied on the
                // cycle it becomes visible at this segment.  A signal
                // generated at cycle g from segment o reaches segment s
                // at g + max(0, s - o); anything still unapplied a full
                // cycle past that arrival was missed by delivery.
                // (Signals generated after this cycle's delivery pass -
                // e.g. load-resume events from the LSQ - are legitimately
                // pending, hence the strict comparison.)
                if (mem.chain == kNoChain)
                    continue;
                const auto &cs = iq.stateOf(mem.chain);
                if (cs.gen != mem.gen)
                    continue;
                if (mem.appliedSeq > cs.seqCounter) {
                    violation(wireDelivery,
                              "applied signal count <= signals generated",
                              cycle,
                              "seq " + std::to_string(inst->seq) +
                                  " applied " +
                                  std::to_string(mem.appliedSeq) + " > " +
                                  std::to_string(cs.seqCounter) + "\n" +
                                  segDump(k));
                }
                for (std::size_t si = 0; si < cs.log.size(); ++si) {
                    const auto &sig = cs.log.at(si);
                    if (sig.seq <= mem.appliedSeq)
                        continue;
                    const Cycle lag =
                        static_cast<int>(k) > sig.originSegment
                            ? static_cast<Cycle>(static_cast<int>(k) -
                                                 sig.originSegment)
                            : 0;
                    if (sig.cycle + lag < cycle) {
                        violation(
                            wireDelivery,
                            "chain-wire signals arrive on schedule", cycle,
                            "seq " + std::to_string(inst->seq) +
                                " in segment " + std::to_string(k) +
                                " missed signal " +
                                std::to_string(sig.seq) + " of chain " +
                                std::to_string(mem.chain) +
                                " (generated cycle " +
                                std::to_string(sig.cycle) +
                                " at segment " +
                                std::to_string(sig.originSegment) + ")\n" +
                                segDump(k));
                    }
                }
            }
        }
    }

    // The dispatch-stage register table listens at the top segment.
    {
        const int top = static_cast<int>(n) - 1;
        for (std::size_t r = 0; r < iq.regInfo.size(); ++r) {
            const auto &e = iq.regInfo[r];
            if (!e.pending || e.chain == kNoChain)
                continue;
            const auto &cs = iq.stateOf(e.chain);
            if (cs.gen != e.gen)
                continue;
            for (std::size_t si = 0; si < cs.log.size(); ++si) {
                const auto &sig = cs.log.at(si);
                if (sig.seq <= e.appliedSeq)
                    continue;
                const Cycle lag =
                    top > sig.originSegment
                        ? static_cast<Cycle>(top - sig.originSegment)
                        : 0;
                if (sig.cycle + lag < cycle) {
                    violation(wireDelivery,
                              "chain-wire signals arrive on schedule",
                              cycle,
                              "regInfo[" + std::to_string(r) +
                                  "] missed signal " +
                                  std::to_string(sig.seq) + " of chain " +
                                  std::to_string(e.chain) +
                                  " (generated cycle " +
                                  std::to_string(sig.cycle) +
                                  " at segment " +
                                  std::to_string(sig.originSegment) + ")");
                }
            }
        }
    }

    // Promotion respects the previous-cycle free count and the
    // inter-segment bandwidth (deadlock-recovery force promotions are
    // exempt and not counted by the tracking hooks).
    if (iq.auditTracking && !iq.promotedInto.empty()) {
        for (unsigned k = 0; k + 1 < n; ++k) {
            const unsigned bound = std::min<unsigned>(
                iq.params.issueWidth, iq.freePrevSnapshot[k]);
            if (iq.promotedInto[k] > bound) {
                violation(promotionBound,
                          "promotions <= prev-cycle free entries", cycle,
                          "segment " + std::to_string(k) + " accepted " +
                              std::to_string(iq.promotedInto[k]) +
                              " promotions, bound " +
                              std::to_string(bound) + "\n" + segDump(k));
            }
        }
    }

    // --- Incremental scheduling indices vs. full rescan (section 11) ---
    // Every index the event-driven tick consults is a redundant view
    // over per-entry state; re-derive each one the slow way and count
    // any disagreement.

    // O(1) occupancy.
    std::size_t occ_scan = 0;
    for (unsigned k = 0; k < n; ++k)
        occ_scan += iq.segments[k].size();
    if (occ_scan != iq.totalOcc) {
        violation(occIndex, "segmented occupancy counter == rescan", cycle,
                  "totalOcc=" + std::to_string(iq.totalOcc) +
                      " but segments hold " + std::to_string(occ_scan));
    }

    // Promotion-candidate counts, activity masks, and per-entry flags;
    // subscriber and countdown back-pointers along the way.
    std::size_t subs_scan = 0;   // resident memberships on a wire
    std::size_t cds_scan = 0;    // resident memberships counting down
    for (unsigned k = 0; k < n; ++k) {
        unsigned elig_scan = 0;
        for (const auto &inst : iq.segments[k]) {
            const bool elig =
                k >= 1 &&
                iq.effectiveDelay(*inst) < SegmentedIq::threshold(k - 1);
            if (elig)
                ++elig_scan;
            if (elig != inst->seg.promoEligible) {
                violation(promoIndex,
                          "promotion-eligibility flag == rescan", cycle,
                          "seq " + std::to_string(inst->seq) +
                              " flag " +
                              std::to_string(inst->seg.promoEligible) +
                              " but predicate says " +
                              std::to_string(elig) + "\n" + segDump(k));
            }

            for (int m = 0; m < inst->seg.numMemberships; ++m) {
                const ChainMembership &mem = inst->seg.memberships[m];
                const bool on_wire = mem.chain != kNoChain;
                if (on_wire != (mem.subIdx >= 0)) {
                    violation(subIndex,
                              "membership subscribed iff on a wire", cycle,
                              "seq " + std::to_string(inst->seq) +
                                  " membership " + std::to_string(m) +
                                  " chain " + std::to_string(mem.chain) +
                                  " subIdx " + std::to_string(mem.subIdx));
                } else if (on_wire) {
                    ++subs_scan;
                    const auto &subs = iq.stateOf(mem.chain).memberSubs;
                    const auto idx = static_cast<std::size_t>(mem.subIdx);
                    if (idx >= subs.size() ||
                        subs[idx].inst != inst.get() ||
                        subs[idx].slot != m) {
                        violation(subIndex,
                                  "subscriber back-pointer is exact",
                                  cycle,
                                  "seq " + std::to_string(inst->seq) +
                                      " membership " + std::to_string(m) +
                                      " subIdx " +
                                      std::to_string(mem.subIdx));
                    }
                }

                const bool want_cd =
                    mem.selfTimed && !mem.suspended && mem.delay > 0;
                if (want_cd != (mem.cdIdx >= 0)) {
                    violation(countdownIndex,
                              "membership counts down iff self-timed",
                              cycle,
                              "seq " + std::to_string(inst->seq) +
                                  " membership " + std::to_string(m) +
                                  " cdIdx " + std::to_string(mem.cdIdx) +
                                  " predicate " + std::to_string(want_cd));
                } else if (want_cd) {
                    ++cds_scan;
                    const auto idx = static_cast<std::size_t>(mem.cdIdx);
                    if (idx >= iq.memberCountdown.size() ||
                        iq.memberCountdown[idx].inst != inst.get() ||
                        iq.memberCountdown[idx].slot != m) {
                        violation(countdownIndex,
                                  "countdown back-pointer is exact", cycle,
                                  "seq " + std::to_string(inst->seq) +
                                      " membership " + std::to_string(m) +
                                      " cdIdx " +
                                      std::to_string(mem.cdIdx));
                    }
                }
            }
        }

        if (elig_scan != iq.eligCount[k]) {
            violation(promoIndex, "promotion-candidate count == rescan",
                      cycle,
                      "segment " + std::to_string(k) + " tracks " +
                          std::to_string(iq.eligCount[k]) +
                          " candidates, rescan finds " +
                          std::to_string(elig_scan) + "\n" + segDump(k));
        }
        if (k < 64) {
            const bool mask_bit = (iq.eligMask >> k) & 1;
            if (mask_bit != (iq.eligCount[k] > 0)) {
                violation(promoIndex, "eligibility mask matches counts",
                          cycle,
                          "segment " + std::to_string(k) + " bit " +
                              std::to_string(mask_bit) + " count " +
                              std::to_string(iq.eligCount[k]));
            }
            const bool near_full =
                iq.params.segmentSize - iq.segments[k].size() <
                iq.params.issueWidth;
            if (near_full != (((iq.nearFullMask >> k) & 1) != 0)) {
                violation(promoIndex, "near-full mask matches occupancy",
                          cycle,
                          "segment " + std::to_string(k) + " holds " +
                              std::to_string(iq.segments[k].size()) +
                              " of " +
                              std::to_string(iq.params.segmentSize));
            }
        }
    }

    // Back-pointer exactness above makes the per-list maps injective,
    // so matching totals prove the lists hold exactly the resident
    // references - no leaks pinning recycled pool slots.
    if (cds_scan != iq.memberCountdown.size()) {
        violation(countdownIndex, "countdown list size == rescan", cycle,
                  "list holds " +
                      std::to_string(iq.memberCountdown.size()) +
                      ", rescan finds " + std::to_string(cds_scan));
    }
    std::size_t subs_held = 0;
    std::size_t active_flags = 0;
    for (std::size_t c = 0; c < iq.chainStates.size(); ++c) {
        const auto &cs = iq.chainStates[c];
        subs_held += cs.memberSubs.size();
        if (cs.active)
            ++active_flags;
        if (!cs.log.empty() && !cs.active) {
            violation(subIndex, "chains with signals in flight are active",
                      cycle,
                      "chain " + std::to_string(c) + " logs " +
                          std::to_string(cs.log.size()) +
                          " signals but is not on the active list");
        }
        // The wire state either carries the allocator's current
        // generation (allocated, or draining before reuse) or lags it
        // by exactly the free() bump; anything else is gen drift.
        const ChainId id = static_cast<ChainId>(c);
        if (!iq.chains.isLive(id, cs.gen) &&
            iq.chains.generation(id) != cs.gen + 1) {
            violation(subIndex, "chain-state generation tracks allocator",
                      cycle,
                      "chain " + std::to_string(c) + " state gen " +
                          std::to_string(cs.gen) + " allocator gen " +
                          std::to_string(iq.chains.generation(id)));
        }
    }
    if (subs_held != subs_scan) {
        violation(subIndex, "subscriber list sizes == rescan", cycle,
                  "lists hold " + std::to_string(subs_held) +
                      ", rescan finds " + std::to_string(subs_scan));
    }
    if (active_flags != iq.activeChains.size()) {
        violation(subIndex, "active-chain list size == flags", cycle,
                  "list holds " + std::to_string(iq.activeChains.size()) +
                      ", " + std::to_string(active_flags) +
                      " chains are flagged active");
    }

    // Register-table side: subscription and countdown back-pointers.
    std::size_t reg_cds_scan = 0;
    for (std::size_t r = 0; r < iq.regInfo.size(); ++r) {
        const auto &e = iq.regInfo[r];
        if (iq.regSubChain[r] != e.chain) {
            violation(subIndex, "table subscription tracks its chain",
                      cycle,
                      "regInfo[" + std::to_string(r) + "] chain " +
                          std::to_string(e.chain) + " but subscribed to " +
                          std::to_string(iq.regSubChain[r]));
        } else if (e.chain != kNoChain) {
            const auto &subs = iq.stateOf(e.chain).regSubs;
            const int pos = iq.regSubPos[r];
            if (pos < 0 ||
                static_cast<std::size_t>(pos) >= subs.size() ||
                subs[static_cast<std::size_t>(pos)] !=
                    static_cast<RegIndex>(r)) {
                violation(subIndex, "table subscriber back-pointer exact",
                          cycle,
                          "regInfo[" + std::to_string(r) + "] pos " +
                              std::to_string(pos));
            }
        }

        const bool want_cd =
            e.pending && e.selfTimed && !e.suspended && e.latency > 0;
        const int cd = iq.regCdPos[r];
        if (want_cd != (cd >= 0)) {
            violation(countdownIndex,
                      "table entry counts down iff self-timed", cycle,
                      "regInfo[" + std::to_string(r) + "] cdPos " +
                          std::to_string(cd) + " predicate " +
                          std::to_string(want_cd));
        } else if (want_cd) {
            ++reg_cds_scan;
            if (static_cast<std::size_t>(cd) >= iq.regCountdown.size() ||
                iq.regCountdown[static_cast<std::size_t>(cd)] !=
                    static_cast<RegIndex>(r)) {
                violation(countdownIndex,
                          "table countdown back-pointer exact", cycle,
                          "regInfo[" + std::to_string(r) + "] cdPos " +
                              std::to_string(cd));
            }
        }
    }
    if (reg_cds_scan != iq.regCountdown.size()) {
        violation(countdownIndex, "table countdown size == rescan", cycle,
                  "list holds " + std::to_string(iq.regCountdown.size()) +
                      ", rescan finds " + std::to_string(reg_cds_scan));
    }
}

void
Auditor::auditIdeal(IdealIq &iq, Cycle cycle)
{
    // The ready list must hold exactly the resident instructions whose
    // gating operands are all ready; pendingOps must agree with the
    // scoreboard (readiness is monotone during residency, so the event
    // counts cannot drift from the polled truth).
    auto in_ready = [&iq](const DynInstPtr &inst) {
        auto pos = std::lower_bound(
            iq.readyList.begin(), iq.readyList.end(), inst,
            [](const DynInstPtr &a, const DynInstPtr &b) {
                return a->seq < b->seq;
            });
        return pos != iq.readyList.end() && *pos == inst;
    };

    for (const auto &inst : iq.insts) {
        if (!inst->ideal.inQueue) {
            violation(readyIndex, "resident instructions are flagged",
                      cycle, "seq " + std::to_string(inst->seq) +
                                 " resident but not inQueue");
        }
        int pending_scan = 0;
        for (RegIndex r : iq.iqSources(*inst)) {
            if (r != kInvalidReg && !iq.scoreboard.isReady(r))
                ++pending_scan;
        }
        if (pending_scan != inst->ideal.pendingOps) {
            violation(readyIndex, "pending-operand count == rescan", cycle,
                      "seq " + std::to_string(inst->seq) + " tracks " +
                          std::to_string(inst->ideal.pendingOps) +
                          " pending, scoreboard says " +
                          std::to_string(pending_scan));
        }
        if ((pending_scan == 0) != in_ready(inst)) {
            violation(readyIndex, "ready list == operands-ready residents",
                      cycle,
                      "seq " + std::to_string(inst->seq) + " pending " +
                          std::to_string(pending_scan) +
                          (in_ready(inst) ? " yet on" : " yet off") +
                          " the ready list");
        }
    }
    if (iq.readyList.size() > iq.insts.size()) {
        violation(readyIndex, "ready list within residency", cycle,
                  "ready " + std::to_string(iq.readyList.size()) +
                      " > resident " + std::to_string(iq.insts.size()));
    }
    for (const auto &inst : iq.readyList) {
        auto pos = std::lower_bound(
            iq.insts.begin(), iq.insts.end(), inst,
            [](const DynInstPtr &a, const DynInstPtr &b) {
                return a->seq < b->seq;
            });
        if (pos == iq.insts.end() || *pos != inst) {
            violation(readyIndex, "ready instructions are resident", cycle,
                      "seq " + std::to_string(inst->seq) +
                          " ready but not resident");
        }
    }
}

} // namespace sciq
