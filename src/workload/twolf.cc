/**
 * @file
 * twolf-like kernel: placement cost evaluation.
 *
 * Small (cache-resident) working set with data-dependent but skewed
 * branches and short integer dependence chains.  Benefits from a
 * moderately larger window, then flattens - and, like the paper's
 * twolf, loses a little at very large sizes from the added pipeline
 * depth.
 */

#include "workload/kernel_util.hh"
#include "workload/workloads.hh"

namespace sciq {

using namespace kernel;

Program
buildTwolf(const WorkloadParams &params)
{
    const std::uint64_t table_words = 4096;  // 2 x 32 KB tables
    const std::uint64_t iters =
        params.iterations ? params.iterations : 14336;

    const Addr a_base = dataBase(0);
    const Addr b_base = dataBase(1);

    AsmBuilder b;
    // Values below 2^61 so that a+b comparisons stay "mostly below".
    b.words(a_base, randomIndices(table_words, 1ULL << 32, params.seed));
    b.words(b_base,
            randomIndices(table_words, 3ULL << 32, params.seed + 5));

    const RegIndex state = intReg(11), p_a = intReg(12), p_b = intReg(13);
    const RegIndex count = intReg(14), acc = intReg(15);
    const RegIndex t1 = intReg(16), t2 = intReg(17);
    const RegIndex av = intReg(18), bv = intReg(19), addr = intReg(20);

    b.la(p_a, a_base).la(p_b, b_base);
    b.li(count, static_cast<std::int64_t>(iters));
    b.li(state, static_cast<std::int64_t>(params.seed * 2 + 1));
    b.addi(acc, intReg(0), 0);

    b.label("loop");
    b.slli(t1, state, 13);
    b.xor_(state, state, t1);
    b.srli(t1, state, 7);
    b.xor_(state, state, t1);

    b.andi(addr, state, 4095);
    b.slli(addr, addr, 3);
    b.add(t2, addr, p_a);
    b.ld(av, t2, 0);
    b.add(t2, addr, p_b);
    b.ld(bv, t2, 0);

    // ~25% taken: a ranges over [0,2^32), b over [0,3*2^32).
    b.blt(bv, av, "swap");
    b.add(acc, acc, av);       // common path: accept move
    b.j("join");
    b.label("swap");
    b.sub(t1, av, bv);         // rare path: reject, store penalty
    b.add(t2, addr, p_a);
    b.st(t1, t2, 0);
    b.label("join");
    b.addi(count, count, -1);
    b.bne(count, intReg(0), "loop");

    epilogueInt(b, acc);
    return b.build("twolf");
}

} // namespace sciq
