#include "ooo_core.hh"

#include <algorithm>
#include <bit>
#include <ostream>
#include <sstream>

#include "isa/disassembler.hh"

#include "common/errors.hh"
#include "common/logging.hh"
#include "core/fetch_stream.hh"
#include "iq/fifo_iq.hh"
#include "iq/ideal_iq.hh"
#include "iq/prescheduled_iq.hh"
#include "iq/segmented_iq.hh"

namespace sciq {

const char *
iqKindName(IqKind kind)
{
    switch (kind) {
      case IqKind::Ideal: return "ideal";
      case IqKind::Segmented: return "segmented";
      case IqKind::Prescheduled: return "prescheduled";
      case IqKind::Fifo: return "fifo";
    }
    return "?";
}

void
CoreParams::finalize()
{
    if (robSize == 0)
        robSize = 3 * iq.numEntries;
    if (lsqSize == 0)
        lsqSize = robSize;
    if (numPhysRegs == 0)
        numPhysRegs = kNumArchRegs + robSize + 16;
}

OooCore::OooCore(const Program &program_, const CoreParams &params_)
    : program(program_), params(params_), statsGroup("core"),
      mem(params_.mem),
      rename((params.finalize(), params.numPhysRegs)),
      scoreboard(params.numPhysRegs),
      physReadyCycle(params.numPhysRegs, 0),
      fu(params.fu), bp(params.bp), btbUnit(params.btbEntries, params.btbAssoc),
      ras(params.rasEntries), hmp(params.hmpEntries),
      lrp(params.lrpEntries), rob(params.robSize),
      fetchPc(program_.entry())
{
    switch (params.iqKind) {
      case IqKind::Ideal:
        iq = std::make_unique<IdealIq>(params.iq, scoreboard, fu);
        break;
      case IqKind::Segmented:
        iq = std::make_unique<SegmentedIq>(params.iq, scoreboard, fu,
                                           &hmp, &lrp);
        break;
      case IqKind::Prescheduled:
        iq = std::make_unique<PrescheduledIq>(params.iq, scoreboard, fu);
        break;
      case IqKind::Fifo:
        iq = std::make_unique<FifoIq>(params.iq, scoreboard, fu);
        break;
    }

    // Writeback ring: power-of-two capacity strictly above the largest
    // FU latency, so (cycle & mask) buckets never alias live events.
    std::size_t wb_cap = 1;
    while (wb_cap <= fu.maxLatency())
        wb_cap *= 2;
    wbRing.resize(wb_cap);
    wbMask = wb_cap - 1;

    Lsq::Callbacks cb;
    cb.onLoadComplete = [this](const DynInstPtr &inst, Cycle cycle) {
        markLoadComplete(inst, cycle);
    };
    cb.onLoadMiss = [this](const DynInstPtr &inst, Cycle cycle) {
        iq->onLoadMiss(inst, cycle);
    };
    cb.onStoreReady = [this](const DynInstPtr &inst, Cycle cycle) {
        markStoreReady(inst, cycle);
    };
    lsq = std::make_unique<Lsq>(params.lsqSize, mem.dcache(), fu,
                                scoreboard, std::move(cb));

    program.load(commitMem);

    // ~0 is never a line address (lines are aligned), so it marks an
    // empty memo slot.
    readyLineMemo.fill(~static_cast<Addr>(0));
    icLineMask = ~static_cast<Addr>(mem.icache().lineBytes() - 1);
    icLineShift = static_cast<unsigned>(
        std::countr_zero(static_cast<Addr>(mem.icache().lineBytes())));

    if (params.warmICache) {
        const unsigned line = mem.icache().lineBytes();
        for (Addr pc = program.base();
             pc < program.base() + program.size() * kInstBytes;
             pc += line) {
            mem.icache().warmInsert(pc);
            mem.l2cache().warmInsert(pc);
            lineReadyAt[pc & ~static_cast<Addr>(line - 1)] = 0;
        }
    }

    frontEndCap = params.fetchWidth *
                  (params.fetchToDecode + params.decodeToDispatch +
                   iq->extraDispatchCycles() + 2);

    statsGroup.addScalar("cycles", &cyclesStat, "simulated cycles");
    statsGroup.addScalar("committed_insts", &committedInsts,
                         "instructions committed");
    statsGroup.addScalar("fetched_insts", &fetchedInsts,
                         "instructions fetched (incl. wrong path)");
    statsGroup.addScalar("wrong_path_insts", &wrongPathInsts,
                         "wrong-path instructions fetched");
    statsGroup.addScalar("squashes", &squashes, "pipeline squashes");
    statsGroup.addScalar("mispredicts_resolved", &mispredictsResolved,
                         "mispredicted control insts resolved");
    statsGroup.addScalar("committed_loads", &committedLoads, "");
    statsGroup.addScalar("committed_stores", &committedStores, "");
    statsGroup.addScalar("committed_branches", &committedBranches, "");
    statsGroup.addScalar("committed_cond_branches", &committedCondBranches,
                         "");
    statsGroup.addAverage("rob_occupancy", &robOccupancy,
                          "ROB occupancy per cycle");
    const double rob_hi = static_cast<double>(params.robSize) + 1.0;
    robOccupancyDist.configure(
        0.0, rob_hi,
        std::max(1.0, rob_hi / 64.0));
    statsGroup.addDistribution("rob_occupancy_dist", &robOccupancyDist,
                               "ROB occupancy distribution");

    statsGroup.addChild(&iq->statGroup());
    statsGroup.addChild(&lsq->statGroup());
    statsGroup.addChild(&fu.statGroup());
    statsGroup.addChild(&bp.statGroup());
    statsGroup.addChild(&btbUnit.statGroup());
    statsGroup.addChild(&hmp.statGroup());
    statsGroup.addChild(&lrp.statGroup());
    statsGroup.addChild(&mem.statGroup());
}

OooCore::~OooCore() = default;

std::uint64_t
OooCore::FetchContext::readMem(Addr addr, unsigned size)
{
    // Byte-wise forwarding from in-flight (speculative) stores,
    // youngest first, falling back to committed memory.  One pass over
    // the store queue fills every covered byte from its youngest
    // producer - equivalent to the per-byte youngest-first search, at
    // one queue walk per load instead of one per byte.
    const Addr lineLo = addr >> kSpecLineShift;
    const Addr lineHi = (addr + size - 1) >> kSpecLineShift;
    bool overlapPossible = false;
    for (Addr l = lineLo; l <= lineHi; ++l)
        overlapPossible |= core.specStoreLines[l & (kSpecLineBuckets - 1)] != 0;
    if (!overlapPossible)
        return core.commitMem.read(addr, size);

    std::uint64_t value = 0;
    unsigned filled = 0;  // per-byte bitmask; size <= 8
    const unsigned all = (size >= 8) ? 0xffu : ((1u << size) - 1u);
    for (auto it = core.storeQueueSpec.rbegin();
         it != core.storeQueueSpec.rend() && filled != all; ++it) {
        const DynInstPtr &st = *it;
        const Addr lo = st->effAddr;
        const Addr hi = lo + st->staticInst.memSize();
        if (lo >= addr + size || hi <= addr)
            continue;
        const unsigned first = lo > addr ? static_cast<unsigned>(lo - addr)
                                         : 0u;
        const unsigned last = hi < addr + size
                                  ? static_cast<unsigned>(hi - addr)
                                  : size;
        for (unsigned i = first; i < last; ++i) {
            if (filled & (1u << i))
                continue;  // a younger store already produced this byte
            const Addr a = addr + i;
            const auto byte =
                static_cast<std::uint8_t>(st->memValue >> (8 * (a - lo)));
            value |= static_cast<std::uint64_t>(byte) << (8 * i);
            filled |= 1u << i;
        }
    }
    for (unsigned i = 0; i < size; ++i) {
        if (filled & (1u << i))
            continue;
        const auto byte =
            static_cast<std::uint8_t>(core.commitMem.read(addr + i, 1));
        value |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return value;
}

void
OooCore::trackSpecStore(const DynInst &st, int delta)
{
    const Addr lo = st.effAddr >> kSpecLineShift;
    const Addr hi =
        (st.effAddr + st.staticInst.memSize() - 1) >> kSpecLineShift;
    for (Addr l = lo; l <= hi; ++l) {
        specStoreLines[l & (kSpecLineBuckets - 1)] =
            static_cast<std::uint16_t>(
                specStoreLines[l & (kSpecLineBuckets - 1)] + delta);
    }
}

bool
OooCore::lineReady(Addr pc)
{
    const Addr line = pc & icLineMask;
    Addr &memo = readyLineMemo[(line >> icLineShift) & (kReadyMemoSize - 1)];
    if (memo == line)
        return true;
    auto it = lineReadyAt.find(line);
    if (it != lineReadyAt.end() && it->second <= curCycle) {
        memo = line;
        return true;
    }
    return false;
}

void
OooCore::touchLine(Addr pc)
{
    const Addr line = pc & icLineMask;
    if (readyLineMemo[(line >> icLineShift) & (kReadyMemoSize - 1)] == line)
        return;  // observed ready; nothing to start
    if (lineReadyAt.count(line))
        return;  // ready or in flight
    lineReadyAt[line] = kCycleNever;
    mem.icache().access(line, false, curCycle,
                        [this, line](Cycle when, AccessOutcome) {
                            lineReadyAt[line] = when;
                        });
}

void
OooCore::predictControl(const DynInstPtr &inst)
{
    const Instruction &si = inst->staticInst;
    const Addr pc = inst->pc;
    const Addr fallthrough = pc + kInstBytes;

    inst->historySnap = bp.snapshot();

    if (si.isCondBranch()) {
        inst->usedCondPredictor = true;
        inst->predictedTaken = bp.predict(pc);
        const Addr target =
            pc + static_cast<Addr>(static_cast<std::uint64_t>(si.imm)) *
                     kInstBytes;
        inst->predictedNextPc = inst->predictedTaken ? target : fallthrough;
        return;
    }

    switch (si.op) {
      case Opcode::J:
        inst->predictedTaken = true;
        inst->predictedNextPc = inst->oracleNextPc;  // direct: exact
        break;
      case Opcode::JAL:
        inst->predictedTaken = true;
        inst->predictedNextPc = inst->oracleNextPc;  // direct: exact
        ras.push(fallthrough);
        break;
      case Opcode::JR: {
        inst->predictedTaken = true;
        inst->predictedNextPc = ras.pop();
        break;
      }
      case Opcode::JALR: {
        inst->predictedTaken = true;
        Addr target;
        inst->predictedNextPc =
            btbUnit.lookup(pc, target) ? target : fallthrough;
        ras.push(fallthrough);
        break;
      }
      default:
        inst->predictedNextPc = fallthrough;
        break;
    }
}

void
OooCore::fetchStage()
{
    if (fetchHalted || fetchInvalid || curCycle < fetchResumeCycle)
        return;
    if (frontEndQueue.size() >= frontEndCap)
        return;

    unsigned fetched = 0;
    unsigned branches = 0;
    FetchContext xc(*this);

    while (fetched < params.fetchWidth &&
           frontEndQueue.size() < frontEndCap) {
        if (!lineReady(fetchPc)) {
            touchLine(fetchPc);
            break;
        }
        // Prefetch the sequential successor line.
        touchLine(fetchPc + mem.icache().lineBytes());

        // On the correct path the shared stream (when attached) supplies
        // the decoded instruction and its oracle outcome; wrong-path
        // fetch diverges per core and always executes locally.
        const FetchStreamEntry *se = nullptr;
        if (fetchStream && !wrongPathMode)
            se = fetchStream->entry(streamIdx);

        const Instruction *si;
        if (se) {
            SCIQ_ASSERT(se->pc == fetchPc,
                        "fetch stream desync: stream pc %llx, core pc %llx",
                        (unsigned long long)se->pc,
                        (unsigned long long)fetchPc);
            si = &se->inst;
        } else {
            si = program.fetch(fetchPc);
            if (!si) {
                // Wrong-path fetch ran off the program image; wait for
                // the redirect.
                fetchInvalid = true;
                break;
            }
        }

        if (si->isControl() && branches >= params.maxBranchesPerFetch)
            break;

        DynInstPtr inst = instPool.create();
        inst->staticInst = *si;
        inst->pc = fetchPc;
        inst->seq = nextSeq++;
        inst->fetchCycle = curCycle;
        inst->onWrongPath = wrongPathMode;
        inst->archSrc = si->srcRegs();
        inst->archDst = si->dstReg();

        if (se) {
            // Replay the precomputed oracle outcome onto the
            // speculative state (a stream entry records at most one
            // written register - exec_impl has a single writeReg site).
            inst->oracleNextPc = se->nextPc;
            inst->oracleTaken = se->taken;
            inst->isHalt = se->halted;
            inst->effAddr = se->effAddr;
            inst->memValue = se->memValue;
            if (se->dstReg != kInvalidReg) {
                specRegs[se->dstReg] = se->dstValue;
                inst->dstValue = se->dstValue;
            }
            ++streamIdx;
        } else {
            // Oracle execution on the speculative state.
            xc.wroteReg = false;
            ExecResult res = execute(*si, fetchPc, xc);
            inst->oracleNextPc = res.nextPc;
            inst->oracleTaken = res.taken;
            inst->isHalt = res.halted;
            inst->effAddr = res.effAddr;
            inst->memValue = res.memValue;
            if (xc.wroteReg)
                inst->dstValue = xc.lastValue;
        }

        if (inst->isStore()) {
            storeQueueSpec.push_back(inst);
            trackSpecStore(*inst, +1);
        }

        inst->predictedNextPc = fetchPc + kInstBytes;
        if (si->isControl()) {
            ++branches;
            predictControl(inst);
        }
        inst->mispredicted = inst->predictedNextPc != inst->oracleNextPc &&
                             !inst->isHalt;

        // Checkpoint fetch state after executing the control inst so a
        // squash can restart cleanly at its successor.
        if (si->isControl()) {
            inst->checkpoint = instPool.takeCheckpoint();
            if (!inst->checkpoint)
                inst->checkpoint = std::make_unique<FetchCheckpoint>();
            inst->checkpoint->regs = specRegs;
            inst->checkpoint->ras = ras.snapshot();
            inst->checkpoint->streamNext = streamIdx;
        }

        inst->dispatchReadyCycle = curCycle + params.fetchToDecode +
                                   params.decodeToDispatch +
                                   iq->extraDispatchCycles();

        frontEndQueue.push_back(inst);
        fetchedInsts.inc();
        if (wrongPathMode)
            wrongPathInsts.inc();
        ++fetched;

        if (inst->isHalt) {
            fetchHalted = true;
            break;
        }

        if (inst->mispredicted) {
            if (!params.modelWrongPath) {
                fetchInvalid = true;  // stall until the redirect
                break;
            }
            wrongPathMode = true;
        }

        fetchPc = inst->predictedNextPc;

        // A taken control transfer ends the fetch group.
        if (si->isControl() && inst->predictedTaken)
            break;
    }
}

void
OooCore::dispatchStage()
{
    for (unsigned n = 0; n < params.dispatchWidth; ++n) {
        if (frontEndQueue.empty())
            break;
        DynInstPtr inst = frontEndQueue.front();
        if (inst->dispatchReadyCycle > curCycle)
            break;
        if (rob.full())
            break;
        if (inst->archDst != kInvalidReg && !rename.hasFreeReg())
            break;
        if (inst->staticInst.isMem() && lsq->full())
            break;
        if (!iq->canInsert(inst))
            break;

        frontEndQueue.pop_front();

        // Rename sources then destination.
        for (int i = 0; i < 2; ++i) {
            inst->physSrc[i] = inst->archSrc[i] == kInvalidReg
                                   ? kInvalidReg
                                   : rename.lookup(inst->archSrc[i]);
        }
        if (inst->archDst != kInvalidReg) {
            auto [phys, prev] = rename.allocate(inst->archDst);
            inst->physDst = phys;
            inst->prevPhysDst = prev;
            scoreboard.clearReady(phys);
            physReadyCycle[phys] = kCycleNever;
        }

        rob.pushBack(inst);
        if (inst->staticInst.isMem())
            lsq->insert(inst);
        iq->insert(inst, curCycle);
        inst->dispatched = true;
    }
}

void
OooCore::issueStage()
{
    iq->issueSelect(curCycle, [this](const DynInstPtr &inst) -> bool {
        if (!fu.tryAcquire(inst->opClass(), curCycle))
            return false;
        inst->issued = true;
        inst->issueCycle = curCycle;
        ++issuedThisCycleCount;
        const unsigned lat = fu.latency(inst->opClass());
        SCIQ_ASSERT(lat > 0 && lat <= wbMask,
                    "FU latency %u outside the writeback ring", lat);
        wbRing[(curCycle + lat) & wbMask].push_back(inst);
        ++inFlightExec;
        return true;
    });
}

void
OooCore::markLoadComplete(const DynInstPtr &inst, Cycle cycle)
{
    inst->completed = true;
    inst->completeCycle = cycle;
    if (inst->physDst != kInvalidReg) {
        scoreboard.setReady(inst->physDst);
        physReadyCycle[inst->physDst] = cycle;
        iq->onRegReady(inst->physDst);
    }
    iq->onLoadComplete(inst, cycle);
    // A load "writes back" when its data returns: chains headed by it
    // are deallocated here.
    iq->onWriteback(inst, cycle);
}

void
OooCore::markStoreReady(const DynInstPtr &inst, Cycle cycle)
{
    if (!inst->completed) {
        inst->completed = true;
        inst->completeCycle = cycle;
    }
}

void
OooCore::writebackStage()
{
    auto &bucket = wbRing[curCycle & wbMask];
    if (bucket.empty())
        return;
    // Swap the bucket out (capacities ping-pong, so draining stays
    // allocation-free): nothing may append to this cycle's bucket
    // while it is being walked.
    wbScratch.clear();
    wbScratch.swap(bucket);

    for (DynInstPtr &inst : wbScratch) {
        SCIQ_ASSERT(inFlightExec > 0, "writeback underflow");
        --inFlightExec;
        if (inst->squashed)
            continue;

        if (inst->staticInst.isMem()) {
            // Address generation finished; the LSQ takes over.
            lsq->setAddrReady(inst, curCycle);
            continue;
        }

        inst->completed = true;
        inst->completeCycle = curCycle;
        if (inst->physDst != kInvalidReg) {
            scoreboard.setReady(inst->physDst);
            physReadyCycle[inst->physDst] = curCycle;
            iq->onRegReady(inst->physDst);
        }
        iq->onWriteback(inst, curCycle);

        if (inst->isControl() && inst->mispredicted) {
            mispredictsResolved.inc();
            if (!pendingSquashBranch ||
                inst->seq < pendingSquashBranch->seq) {
                pendingSquashBranch = inst;
            }
        }
    }
    wbScratch.clear();  // release the DynInstPtr refs promptly
}

void
OooCore::doSquash()
{
    DynInstPtr branch = pendingSquashBranch;
    pendingSquashBranch = nullptr;
    const SeqNum target = branch->seq;
    squashes.inc();

    // Walk the ROB youngest-first, undoing rename and dispatch effects.
    while (!rob.empty() && rob.back()->seq > target) {
        DynInstPtr inst = rob.back();
        rob.popBack();
        inst->squashed = true;
        if (observer)
            observer->onSquash(*inst, curCycle);
        iq->onSquashInst(inst);
        if (inst->physDst != kInvalidReg) {
            rename.undo(inst->archDst, inst->physDst, inst->prevPhysDst);
            scoreboard.setReady(inst->physDst);  // back on the free list
            iq->onRegReady(inst->physDst);
        }
    }

    for (auto &inst : frontEndQueue)
        inst->squashed = true;
    frontEndQueue.clear();

    iq->squash(target);
    lsq->squash(target);
    while (!storeQueueSpec.empty() && storeQueueSpec.back()->seq > target) {
        trackSpecStore(*storeQueueSpec.back(), -1);
        storeQueueSpec.pop_back();
    }

    // Restore the speculative fetch state from the branch's checkpoint.
    SCIQ_ASSERT(branch->checkpoint != nullptr,
                "mispredicted control inst lacks a checkpoint");
    specRegs = branch->checkpoint->regs;
    ras.restore(branch->checkpoint->ras);
    bp.restore(branch->historySnap);
    if (branch->usedCondPredictor)
        bp.pushSpecHistory(branch->oracleTaken);

    fetchPc = branch->oracleNextPc;
    fetchHalted = false;
    fetchInvalid = false;
    wrongPathMode = branch->onWrongPath;
    streamIdx = branch->checkpoint->streamNext;
    fetchResumeCycle = curCycle + 1;
}

void
OooCore::commitStage()
{
    // Injected fault: a commit stage that silently stops retiring - the
    // failure mode a wedged scheduler presents - so the watchdog's
    // detection path can be exercised deterministically.
    if (params.faultCommitStallAt && curCycle >= params.faultCommitStallAt)
        return;

    for (unsigned n = 0; n < params.commitWidth; ++n) {
        if (rob.empty())
            break;
        DynInstPtr inst = rob.front();
        if (!inst->completed)
            break;

        if (inst->isStore()) {
            commitMem.write(inst->effAddr, inst->staticInst.memSize(),
                            inst->memValue);
            lsq->commitStore(inst, curCycle);
            SCIQ_ASSERT(!storeQueueSpec.empty() &&
                            storeQueueSpec.front() == inst,
                        "spec store queue out of sync at commit");
            trackSpecStore(*inst, -1);
            storeQueueSpec.pop_front();
            committedStores.inc();
        } else if (inst->isLoad()) {
            lsq->commitLoad(inst);
            committedLoads.inc();
        }

        if (inst->archDst != kInvalidReg)
            committedRegs[inst->archDst] = inst->dstValue;

        // Predictor training.
        if (inst->usedCondPredictor) {
            bp.update(inst->pc, inst->oracleTaken, inst->historySnap);
            if (inst->mispredicted)
                bp.condMispredicts.inc();
            committedBranches.inc();
            committedCondBranches.inc();
        } else if (inst->isControl()) {
            committedBranches.inc();
        }
        if (inst->staticInst.isIndirect())
            btbUnit.update(inst->pc, inst->oracleNextPc);

        if (inst->isLoad()) {
            const bool was_hit =
                inst->loadForwarded || inst->loadWasL1Hit;
            hmp.update(inst->pc, was_hit);
            if (inst->hmpUsed)
                hmp.recordOutcome(inst->hmpPredictedHit, was_hit);
        }

        if (inst->hadTwoOutstanding) {
            const Cycle left = physReadyCycle[inst->physSrc[0]];
            const Cycle right = physReadyCycle[inst->physSrc[1]];
            const bool left_later = left > right;
            lrp.update(inst->pc, left_later);
            if (inst->lrpUsed && inst->lrpPredictedLeft != left_later)
                lrp.mispredicts.inc();
        }

        if (inst->physDst != kInvalidReg)
            rename.release(inst->prevPhysDst);

        iq->onCommit(inst);
        inst->committed = true;
        rob.popFront();
        committedInsts.inc();
        lastCommitCycle = curCycle;
        if (observer)
            observer->onCommit(*inst, curCycle);

        if (inst->isHalt) {
            haltCommitted = true;
            break;
        }
    }
}

bool
OooCore::coreBusy() const
{
    return inFlightExec > 0 || lsq->busy();
}

void
OooCore::tick()
{
    ++curCycle;
    cyclesStat.inc();
    issuedThisCycleCount = 0;

    mem.tick(curCycle);
    fu.beginCycle(curCycle);

    commitStage();
    writebackStage();
    if (pendingSquashBranch)
        doSquash();
    issueStage();
    iq->tick(curCycle, coreBusy());
    lsq->tick(curCycle);
    dispatchStage();
    fetchStage();

    robOccupancy.sample(static_cast<double>(rob.size()));
    robOccupancyDist.sample(static_cast<double>(rob.size()));

    if (cycleHook)
        cycleHook(*this, curCycle);
}

void
OooCore::seedState(const std::array<std::uint64_t, kNumArchRegs> &regs,
                   const SparseMemory &memory_image, Addr start_pc)
{
    SCIQ_ASSERT(curCycle == 0 && nextSeq == 1,
                "seedState after simulation started");
    specRegs = regs;
    committedRegs = regs;
    commitMem = memory_image;
    fetchPc = start_pc;
}

void
OooCore::attachFetchStream(SharedFetchStream *stream)
{
    SCIQ_ASSERT(curCycle == 0 && nextSeq == 1,
                "attachFetchStream after simulation started");
    fetchStream = stream;
    streamIdx = 0;
}

void
OooCore::debugDump(std::ostream &os) const
{
    os << "=== core state @ cycle " << curCycle << " ===\n"
       << "committed=" << committedCount() << " fetched="
       << static_cast<std::uint64_t>(fetchedInsts.value())
       << " rob=" << rob.size() << "/" << rob.capacity()
       << " frontEnd=" << frontEndQueue.size()
       << " iqOcc=" << iq->occupancy()
       << " inFlightExec=" << inFlightExec
       << " lsqBusy=" << (lsq->busy() ? 1 : 0)
       << " fetchPc=" << std::hex << fetchPc << std::dec
       << " fetchHalted=" << fetchHalted
       << " fetchInvalid=" << fetchInvalid << "\n";
    const std::size_t show = std::min<std::size_t>(rob.size(), 8);
    for (std::size_t i = 0; i < show; ++i) {
        const DynInstPtr &inst = rob.at(i);
        os << "  rob[" << i << "] seq=" << inst->seq << " pc=" << std::hex
           << inst->pc << std::dec << " '"
           << disassemble(inst->staticInst) << "'"
           << " disp=" << inst->dispatched << " issued=" << inst->issued
           << " comp=" << inst->completed
           << " addrRdy=" << inst->addrReady
           << " memSent=" << inst->memAccessSent;
        if (inst->dispatched) {
            os << " srcRdy=" << scoreboard.isReady(inst->physSrc[0])
               << scoreboard.isReady(inst->physSrc[1]);
        }
        os << "\n";
    }
}

void
OooCore::dumpPipelineState(std::ostream &os) const
{
    debugDump(os);
    os << "lsq=" << lsq->size() << " busy=" << (lsq->busy() ? 1 : 0)
       << " storeQueueSpec=" << storeQueueSpec.size() << "\n";
    iq->dumpState(os);
}

std::uint64_t
OooCore::run(std::uint64_t max_insts, Cycle max_cycles)
{
    const std::uint64_t start = committedCount();
    const Cycle cycle_limit =
        max_cycles == ~0ULL ? ~0ULL : curCycle + max_cycles;
    while (!haltCommitted && committedCount() - start < max_insts &&
           curCycle < cycle_limit) {
        tick();
        if (params.watchdogCycles &&
            curCycle - lastCommitCycle >= params.watchdogCycles) {
            std::ostringstream dump;
            dumpPipelineState(dump);
            throw DeadlockError(
                "watchdog: no instruction committed for " +
                    std::to_string(curCycle - lastCommitCycle) +
                    " cycles (cycle " + std::to_string(curCycle) +
                    ", committed " + std::to_string(committedCount()) + ")",
                dump.str());
        }
    }
    return committedCount() - start;
}

} // namespace sciq
