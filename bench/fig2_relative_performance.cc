/**
 * @file
 * Reproduces **Figure 2** of the paper: performance of 512-entry
 * segmented-IQ configurations relative to an ideal single-cycle
 * 512-entry IQ.
 *
 * For each benchmark, four configurations (base, HMP, LRP, comb) are
 * evaluated at three chain budgets (unlimited, 128, 64), exactly the
 * twelve bars the paper plots per benchmark, plus the average row.
 *
 * Expected shape (paper section 6.1/6.2): base-unlimited within ~16%
 * of ideal on average; finite chain budgets hurt the base config badly
 * (-17% at 128 chains, -27% at 64) and HMP/LRP recover most of it.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sciq;
using namespace sciq::bench;

int
main(int argc, char **argv)
{
    // gcc is omitted exactly as in the paper's Figure 2 ("whose
    // behavior in this portion of the study is uninteresting").
    BenchArgs args = parseArgs(argc, argv,
                               {"mgrid", "vortex", "twolf", "applu",
                                "ammp", "swim", "equake"},
                               {"iq_size"});

    const unsigned kIqSize = static_cast<unsigned>(
        args.raw.getInt("iq_size", 512));
    const std::vector<std::pair<const char *, std::pair<bool, bool>>>
        configs = {{"base", {false, false}},
                   {"hmp", {true, false}},
                   {"lrp", {false, true}},
                   {"comb", {true, true}}};
    const std::vector<int> chain_budgets = {-1, 128, 64};

    std::printf("Figure 2: %u-entry segmented IQ relative to ideal "
                "%u-entry IQ\n",
                kIqSize, kIqSize);
    std::printf("(percent of ideal-IQ performance; paper plots the "
                "same 12 bars per benchmark)\n\n");
    std::printf("%-9s %7s |", "bench", "ideal");
    for (int chains : chain_budgets) {
        for (const auto &[name, flags] : configs) {
            (void)flags;
            std::printf(" %5s%s", name,
                        chains < 0 ? "/inf" : chains == 128 ? "/128"
                                                            : "/064");
        }
        std::printf(" |");
    }
    std::printf("\n");
    hr('-', 128);

    SweepBatch batch(args);
    for (const auto &wl : args.workloads) {
        batch.add(makeIdealConfig(kIqSize, wl));
        for (int chains : chain_budgets) {
            for (const auto &[name, flags] : configs) {
                (void)name;
                batch.add(makeSegmentedConfig(
                    kIqSize, chains, flags.first, flags.second, wl));
            }
        }
    }
    batch.run();

    std::vector<double> sums;

    for (const auto &wl : args.workloads) {
        RunResult ideal = batch.next();
        std::printf("%-9s %7.3f |", wl.c_str(), ideal.ipc);

        std::vector<double> rels;
        for (int chains : chain_budgets) {
            (void)chains;
            for (std::size_t c = 0; c < configs.size(); ++c) {
                RunResult r = batch.next();
                double rel = ideal.ipc > 0 ? 100.0 * r.ipc / ideal.ipc
                                           : 0.0;
                rels.push_back(rel);
                std::printf(" %8.1f", rel);
            }
            std::printf(" |");
        }
        std::printf("\n");
        std::fflush(stdout);
        if (sums.empty())
            sums.assign(rels.size(), 0.0);
        for (std::size_t i = 0; i < rels.size(); ++i)
            sums[i] += rels[i];
    }

    hr('-', 128);
    std::printf("%-9s %7s |", "average", "");
    std::size_t idx = 0;
    for (std::size_t g = 0; g < chain_budgets.size(); ++g) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
            std::printf(" %8.1f",
                        sums[idx++] /
                            static_cast<double>(args.workloads.size()));
        }
        std::printf(" |");
    }
    std::printf("\n\nPaper reference points: base/unlimited avg ~84%%; "
                "base/128 ~71%%; base/64 ~61%%;\n"
                "HMP and LRP recover most of the loss at finite chain "
                "counts (comb/128 ~80%%).\n");
    finishBench(args);
    return 0;
}
