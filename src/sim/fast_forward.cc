#include "fast_forward.hh"

#include <algorithm>

namespace sciq {

namespace {

/**
 * Functional warming for one retired instruction: train the timing
 * core's caches and predictors exactly as the original step()-based
 * loop did.  Shared by the block-dispatch fast path and the
 * step()-based reference so the warmed state is bit-identical.
 */
struct WarmTrainer
{
    FastForwardStats &stats;
    Cache &dcache;
    Cache &l2;
    HybridBranchPredictor &bp;
    HitMissPredictor &hmp;
    Btb &btb;

    /**
     * Line of the previous mem access, proven resident in both the
     * dcache and the L2 (their own warm memos equal it after every
     * train, and only warm calls mutate them during a fast-forward).
     * A repeat access can therefore skip both cache calls outright;
     * state-identical because both would take their memo fast path.
     */
    static constexpr Addr kNoLine = ~0ULL;
    Addr lastLine = kNoLine;
    Addr lineMask;

    void
    train(std::uint8_t flags, Addr pc, const ExecResult &res)
    {
        if ((flags & (kBbMem | kBbCondBranch | kBbIndirect)) == 0)
            [[likely]] {
            return;
        }

        if (flags & kBbMem) {
            ++stats.memAccessesWarmed;
            const Addr line = res.effAddr & lineMask;
            if (line == lastLine) {
                // Same line as the previous access: resident in L1 and
                // L2 by the memo invariant; only the HMP still trains.
                if (flags & kBbLoad)
                    hmp.update(pc, true);
            } else {
                // Train the hit/miss predictor on loads with the
                // pre-touch residency, then install the line (L1
                // evictions fall back to the L2 just as timed fills
                // would).  warmAccess fuses the residency probe and
                // the insert into one set scan; the resulting state is
                // identical to the separate calls.
                const bool resident = dcache.warmAccess(res.effAddr);
                if (flags & kBbLoad)
                    hmp.update(pc, resident);
                l2.warmInsert(res.effAddr);
                lastLine = line;
            }
        }

        if (flags & kBbCondBranch) {
            ++stats.branchesWarmed;
            // Fused snapshot/predict/update (bit-identical; see
            // HybridBranchPredictor::warmTrain).
            bp.warmTrain(pc, res.taken);
        } else if (flags & kBbIndirect) {
            btb.update(pc, res.nextPc);
        }
    }
};

std::uint8_t
classifyForWarm(const Instruction &inst)
{
    std::uint8_t f = 0;
    if (inst.isMem())
        f |= kBbMem;
    if (inst.isLoad())
        f |= kBbLoad;
    if (inst.isCondBranch())
        f |= kBbCondBranch;
    if (inst.isIndirect())
        f |= kBbIndirect;
    return f;
}

} // namespace

FastForwardStats
fastForward(FunctionalCore &golden, OooCore &core, std::uint64_t insts)
{
    FastForwardStats stats;
    Cache &dcache = core.memHierarchy().dcache();
    Cache &l2 = core.memHierarchy().l2cache();
    WarmTrainer trainer{stats,
                        dcache,
                        l2,
                        core.branchPredictor(),
                        core.hitMissPredictor(),
                        core.btb(),
                        WarmTrainer::kNoLine,
                        // Same-line test at the smaller of the two line
                        // sizes, so a match implies a match in both.
                        ~static_cast<Addr>(
                            std::min(dcache.lineBytes(), l2.lineBytes()) -
                            1)};

    if (golden.blockCacheEnabled()) {
        // Block-at-a-time dispatch; predictor/cache training stays
        // per-instruction through the hook (bit-identity of the warmed
        // state is non-negotiable), only the fetch/decode/introspection
        // overhead is amortized per block.  The HALT instruction, when
        // hit, is trained by neither path (it is neither mem nor
        // branch) and is excluded from instsSkipped below, matching
        // the step() loop's early break.
        const std::uint64_t ran = golden.runBlocks(
            insts, [&](const BbOp &op, Addr pc, const ExecResult &res) {
                trainer.train(op.flags, pc, res);
            });
        stats.hitHalt = golden.halted();
        stats.instsSkipped = ran - (stats.hitHalt ? 1 : 0);
    } else {
        // step()-based reference path (bb_cache=0).
        for (std::uint64_t i = 0; i < insts && !golden.halted(); ++i) {
            if (!golden.step())
                break;
            ++stats.instsSkipped;
            const Instruction *inst = golden.lastInst();
            trainer.train(classifyForWarm(*inst), golden.lastPc(),
                          golden.lastResult());
        }
        stats.hitHalt = golden.halted();
    }

    if (!stats.hitHalt) {
        core.seedState(golden.regFile(), golden.memory(), golden.pc());
    }
    return stats;
}

} // namespace sciq
