# Empty compiler generated dependencies file for sciq_core.
# This may be replaced when dependencies are built.
