/**
 * @file
 * Shared helpers for the synthetic workload kernels.
 */

#ifndef SCIQ_WORKLOAD_KERNEL_UTIL_HH
#define SCIQ_WORKLOAD_KERNEL_UTIL_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "isa/asm_builder.hh"
#include "workload/workloads.hh"

namespace sciq {
namespace kernel {

/**
 * Data-region base for region k.  Regions are 16 MiB apart with a
 * small skew so different arrays do not systematically collide in the
 * same cache sets.
 */
constexpr Addr
dataBase(unsigned k)
{
    return 0x01000000ULL * (k + 1) + 0x1C0ULL * k;
}

/** Scaled element count, kept a multiple of `align` elements. */
inline std::uint64_t
scaled(std::uint64_t base, double scale, std::uint64_t align = 8)
{
    auto n = static_cast<std::uint64_t>(static_cast<double>(base) * scale);
    if (n < align)
        n = align;
    return n - n % align;
}

/** Deterministic array of doubles in (0, 1]. */
inline std::vector<double>
randomDoubles(std::uint64_t n, std::uint64_t seed)
{
    Random rng(seed);
    std::vector<double> v(n);
    for (auto &x : v)
        x = rng.uniform() + 1e-6;
    return v;
}

/** Deterministic array of 64-bit indices below `bound`. */
inline std::vector<std::uint64_t>
randomIndices(std::uint64_t n, std::uint64_t bound, std::uint64_t seed)
{
    Random rng(seed);
    std::vector<std::uint64_t> v(n);
    for (auto &x : v)
        x = rng.below(bound);
    return v;
}

/**
 * Standard epilogue: fold an FP accumulator into the integer checksum
 * register r10 and halt.  Every kernel ends through here so the
 * functional-vs-pipeline equivalence test has a single convention.
 */
inline void
epilogueFp(AsmBuilder &b, RegIndex facc)
{
    b.fcvtfi(intReg(9), facc);
    b.xor_(intReg(10), intReg(10), intReg(9));
    b.halt();
}

inline void
epilogueInt(AsmBuilder &b, RegIndex acc)
{
    b.xor_(intReg(10), intReg(10), acc);
    b.halt();
}

} // namespace kernel
} // namespace sciq

#endif // SCIQ_WORKLOAD_KERNEL_UTIL_HH
