file(REMOVE_RECURSE
  "CMakeFiles/text_occupancy.dir/text_occupancy.cc.o"
  "CMakeFiles/text_occupancy.dir/text_occupancy.cc.o.d"
  "text_occupancy"
  "text_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
