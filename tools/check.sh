#!/bin/sh
# Full pre-merge check: tier-1 tests, the invariant-audit sweep, the
# SoA-engine differential + exact work-counter proxy, sanitizer
# configurations, and the distributed-sweep differential gates.  Run
# from the repository root:
#
#   tools/check.sh [ubsan|asan|tsan|all|faults|distributed|chaos]...
#
# Modes compose: `tools/check.sh ubsan distributed` runs both legs in
# order.  Default: ubsan.
#
#   ubsan|asan|tsan  tier-1 build + full tests + differential suite,
#                    then that sanitizer's smoke subset
#   all              the same, then every sanitizer sequentially (CI)
#   faults           only the fault-containment suite on the tier-1
#                    build (fast loop for DESIGN.md §13 machinery)
#   distributed      coordinator + 3 local workers must merge the quick
#                    config set byte-identically to a single-process
#                    run — over an AF_UNIX socket and again over TCP
#                    loopback — and a shared ckpt_dir fleet must do
#                    exactly one warm-up total (DESIGN.md §17/§18)
#   chaos            the differential with one worker kill -9'd
#                    mid-sweep (lease requeue), then with the
#                    COORDINATOR kill -9'd and restarted on the same
#                    TCP endpoint + journal (crash recovery), then the
#                    in-process randomized chaos harness (test_chaos,
#                    20 seeded coordinator-kill trials); every path
#                    must keep the final JSON byte-identical
#
# On failure the EXIT trap names the leg that failed and its build dir,
# and copies any sweep journals/results from the scratch dir into
# $SCIQ_ARTIFACT_DIR (when set) for post-mortem.
set -eu

[ "$#" -gt 0 ] || set -- ubsan
for mode in "$@"; do
  case "$mode" in
    ubsan|asan|tsan|all|faults|distributed|chaos) ;;
    *) echo "unknown mode '$mode' (want ubsan, asan, tsan, all," \
            "faults, distributed or chaos)" >&2
       exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"

leg=""
leg_dir=""
scratch=""
on_exit() {
  rc=$?
  if [ "$rc" -ne 0 ] && [ -n "$scratch" ] &&
     [ -n "${SCIQ_ARTIFACT_DIR:-}" ]; then
    # Failure post-mortem: the journals say exactly which jobs were
    # journaled before a kill and what the merge saw.
    mkdir -p "$SCIQ_ARTIFACT_DIR"
    cp "$scratch"/*.jsonl "$scratch"/*.json "$scratch"/*.masked \
       "$SCIQ_ARTIFACT_DIR"/ 2>/dev/null || true
    echo "sweep journals/results copied to $SCIQ_ARTIFACT_DIR" >&2
  fi
  if [ -n "$scratch" ]; then
    rm -rf "$scratch"
  fi
  if [ "$rc" -ne 0 ] && [ -n "$leg" ]; then
    echo "FAILED leg: $leg (build dir: $leg_dir)" >&2
  fi
}
trap on_exit EXIT

begin_leg() {
  leg="$1"
  leg_dir="$2"
  echo "== $leg =="
}

tier1_built=""
tier1_build() {
  if [ -z "$tier1_built" ]; then
    begin_leg "tier-1 build" build
    cmake -B build -S . >/dev/null
    cmake --build build -j "$jobs"
    tier1_built=1
  fi
}

# Tier-1 tests plus the single-process differential suite; the
# precondition for every sanitizer leg, run at most once.
tier1_tested=""
tier1_full() {
  tier1_build
  if [ -n "$tier1_tested" ]; then
    return 0
  fi
  tier1_tested=1

  begin_leg "tier-1 full test suite" build
  ctest --test-dir build --output-on-failure -j "$jobs"

  begin_leg "audit sweep (all workloads, segmented + ideal, audit=1)" build
  ./build/tests/test_audit

  begin_leg "scheduling-index differential sweep (audit=1)" build
  ./build/tests/test_sched_index

  begin_leg "SoA-engine differential + exact work-counter proxy" build
  ./build/tests/test_iq_soa

  begin_leg "segmented-tick substage profile (quick)" build
  ./build/bench/micro_components \
      --benchmark_filter='BM_SegmentedTickSubstages' \
      --benchmark_min_time=0.01 json_out=/tmp/sciq-substages.json
  grep -q '"bench": "micro_components.substages"' /tmp/sciq-substages.json

  begin_leg "host-throughput bench (quick, unbatched + lockstep batch=3)" \
            build
  ./build/bench/bench_throughput quick=1 workloads=swim,twolf
  ./build/bench/bench_throughput quick=1 workloads=swim,twolf batch=3

  begin_leg "bb-cache differential + warming bench (quick)" build
  ./build/tests/test_bb_cache
  ./build/bench/micro_warm quick=1 workloads=swim,twolf
}

# One sanitizer configuration: configure + build under build-<name>,
# then run the fast sanitize_smoke test subset.  TSAN additionally runs
# the full parallel-sweep suite: determinism across worker counts is
# exactly what a data race would break.
run_sanitizer() {
  name="$1"
  flag="$2"
  begin_leg "sanitizer smoke ($name)" "build-$name"
  cmake -B "build-$name" -S . "$flag" >/dev/null
  cmake --build "build-$name" -j "$jobs"
  ctest --test-dir "build-$name" --output-on-failure -j "$jobs" \
        -L sanitize_smoke
  if [ "$name" = tsan ]; then
    begin_leg "tsan: parallel sweep + checkpoint reuse + lockstep batching" \
              "build-$name"
    "./build-$name/tests/test_sweep"
    "./build-$name/tests/test_checkpoint" \
        --gtest_filter='CheckpointCacheTest.*:CheckpointEndToEnd.*'
    "./build-$name/tests/test_batch"
  fi
}

# The wall-clock-only fields two otherwise identical runs legitimately
# disagree on; everything else must match to the byte.
wallclock_mask='"host_seconds"|"host_kcycles_per_sec"|"host_kinsts_per_sec"|"warm_seconds"|"warm_insts_per_sec"'

masked() {
  grep -Ev "$wallclock_mask" "$1"
}

distributed_reference() {
  ./build/examples/sweep_serve mode=local jobs=4 preset=quick \
      out="$scratch/ref.json" >/dev/null
}

compare_masked() {
  masked "$scratch/ref.json" > "$scratch/ref.masked"
  masked "$1" > "$scratch/got.masked"
  diff -u "$scratch/ref.masked" "$scratch/got.masked"
  echo "final JSON is byte-identical to the single-process run"
}

leg_faults() {
  tier1_build
  begin_leg "fault-containment suite (taxonomy, watchdog, injection, journal)" \
            build
  ./build/tests/test_errors
  ./build/tests/test_faults
  ./build/tests/test_journal
  ./build/tests/test_sweep
}

leg_distributed() {
  tier1_build
  begin_leg "distributed sweep differential (coordinator + 3 workers)" build
  scratch="$(mktemp -d)"
  distributed_reference
  tools/sweep_local.sh -b build -w 3 -- \
      "socket=$scratch/sweep.sock" workers=3 preset=quick \
      "out=$scratch/dist.json" "journal=$scratch/dist.jsonl"
  compare_masked "$scratch/dist.json"

  begin_leg "distributed sweep differential (TCP loopback)" build
  port=$(( 21000 + ($$ % 10000) ))
  tools/sweep_local.sh -b build -w 3 -- \
      "listen=127.0.0.1:$port" workers=3 preset=quick \
      "out=$scratch/tcp.json" "journal=$scratch/tcp.jsonl"
  compare_masked "$scratch/tcp.json"

  begin_leg "distributed warm-up sharing (one warm-up per fleet)" build
  mkdir "$scratch/ckpt"
  tools/sweep_local.sh -b build -w 2 -d "$scratch/ckpt" -- \
      "socket=$scratch/warm.sock" workers=2 preset=quick \
      workloads=swim ff=50000 "out=$scratch/warm.json"
  restored="$(grep -c '"ckpt_restored": true' "$scratch/warm.json")"
  blobs="$(find "$scratch/ckpt" -name '*.sciqckpt' | wc -l)"
  if [ "$restored" -ne 2 ] || [ "$blobs" -ne 1 ]; then
    echo "warm sharing broke: $restored restored jobs (want 2)," \
         "$blobs blobs (want 1)" >&2
    exit 1
  fi
  echo "fleet of 2 workers did one warm-up: 1 blob, 2 restored jobs"
  rm -rf "$scratch"
  scratch=""
}

leg_chaos() {
  tier1_build
  begin_leg "worker-chaos differential (kill -9 one of 3 workers)" build
  scratch="$(mktemp -d)"
  distributed_reference
  tools/sweep_local.sh -b build -w 3 -k 2 -- \
      "socket=$scratch/sweep.sock" workers=3 preset=quick \
      "out=$scratch/dist.json" "journal=$scratch/dist.jsonl"
  compare_masked "$scratch/dist.json"

  begin_leg "coordinator-chaos differential (kill -9 + restart, TCP)" build
  # SIGKILL the coordinator after its journal shows fsync'd progress,
  # restart it on the same endpoint + journal: the workers reconnect,
  # redeliver their unacked results, and the merge must not notice.
  port=$(( 31000 + ($$ % 10000) ))
  tools/sweep_local.sh -b build -w 3 -K -- \
      "listen=127.0.0.1:$port" workers=3 preset=quick \
      "out=$scratch/coord.json" "journal=$scratch/coord.jsonl"
  compare_masked "$scratch/coord.json"

  begin_leg "randomized chaos harness (in-process seeded trials)" build
  ./build/tests/test_chaos

  rm -rf "$scratch"
  scratch=""
}

for mode in "$@"; do
  case "$mode" in
    ubsan)
      tier1_full
      run_sanitizer ubsan -DSCIQ_UBSAN=ON ;;
    asan)
      tier1_full
      run_sanitizer asan -DSCIQ_ASAN=ON ;;
    tsan)
      tier1_full
      run_sanitizer tsan -DSCIQ_TSAN=ON ;;
    all)
      tier1_full
      run_sanitizer ubsan -DSCIQ_UBSAN=ON
      run_sanitizer asan -DSCIQ_ASAN=ON
      run_sanitizer tsan -DSCIQ_TSAN=ON ;;
    faults) leg_faults ;;
    distributed) leg_distributed ;;
    chaos) leg_chaos ;;
  esac
done

# Lint the shell tooling when shellcheck is available (CI always has
# it; skip with a notice on bare development machines).
leg="shellcheck"
leg_dir="tools"
if command -v shellcheck >/dev/null 2>&1; then
  echo "== shellcheck tools/*.sh =="
  shellcheck tools/*.sh
else
  echo "== shellcheck not installed; skipping shell lint =="
fi

leg=""
echo "== all checks passed =="
