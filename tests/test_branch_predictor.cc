/** @file Tests for the hybrid branch predictor, BTB and RAS. */

#include <gtest/gtest.h>

#include "branch/branch_predictor.hh"
#include "branch/btb.hh"
#include "branch/ras.hh"

using namespace sciq;

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    HybridBranchPredictor bp;
    const Addr pc = 0x1000;
    for (int i = 0; i < 64; ++i) {
        auto snap = bp.snapshot();
        bp.predict(pc);
        bp.update(pc, true, snap);
    }
    auto snap = bp.snapshot();
    EXPECT_TRUE(bp.predict(pc));
    bp.restore(snap);
}

TEST(BranchPredictor, LearnsAlwaysNotTaken)
{
    HybridBranchPredictor bp;
    const Addr pc = 0x2000;
    for (int i = 0; i < 64; ++i) {
        auto snap = bp.snapshot();
        bp.predict(pc);
        bp.update(pc, false, snap);
    }
    EXPECT_FALSE(bp.predict(pc));
}

TEST(BranchPredictor, LocalComponentLearnsShortPattern)
{
    // A strict alternation is perfectly predictable from 11 bits of
    // local history once trained.
    HybridBranchPredictor bp;
    const Addr pc = 0x3000;
    bool outcome = false;
    int correct_tail = 0;
    for (int i = 0; i < 2000; ++i) {
        auto snap = bp.snapshot();
        bool pred = bp.predict(pc);
        outcome = !outcome;
        bp.update(pc, outcome, snap);
        if (i >= 1500 && pred == outcome)
            ++correct_tail;
    }
    EXPECT_GT(correct_tail, 480);  // >96% over the last 500
}

TEST(BranchPredictor, HistorySnapshotRestores)
{
    HybridBranchPredictor bp;
    // Train toward taken so predictions shift 1s into the history.
    for (int i = 0; i < 32; ++i) {
        auto s = bp.snapshot();
        bp.predict(0x100);
        bp.update(0x100, true, s);
    }
    auto snap = bp.snapshot();
    bp.pushSpecHistory(false);
    bp.predict(0x100);
    EXPECT_NE(bp.snapshot(), snap);
    bp.restore(snap);
    EXPECT_EQ(bp.snapshot(), snap);
}

TEST(BranchPredictor, PushSpecHistoryShiftsOneBit)
{
    HybridBranchPredictor bp;
    auto base = bp.snapshot();
    bp.pushSpecHistory(true);
    EXPECT_EQ(bp.snapshot(), ((base << 1) | 1u) & 0x1FFFu);
    bp.pushSpecHistory(false);
    EXPECT_EQ(bp.snapshot(), ((base << 2) | 2u) & 0x1FFFu);
}

TEST(BranchPredictor, StatsCountPredictions)
{
    HybridBranchPredictor bp;
    for (int i = 0; i < 10; ++i)
        bp.predict(0x100);
    EXPECT_EQ(bp.condPredicts.value(), 10.0);
    EXPECT_EQ(bp.lookups.value(), 10.0);
}

TEST(Btb, MissThenHitAfterUpdate)
{
    Btb btb(64, 4);
    Addr target = 0;
    EXPECT_FALSE(btb.lookup(0x1000, target));
    btb.update(0x1000, 0x2000);
    ASSERT_TRUE(btb.lookup(0x1000, target));
    EXPECT_EQ(target, 0x2000u);
    EXPECT_EQ(btb.hits.value(), 1.0);
    EXPECT_EQ(btb.lookups.value(), 2.0);
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb btb(64, 4);
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    Addr target = 0;
    ASSERT_TRUE(btb.lookup(0x1000, target));
    EXPECT_EQ(target, 0x3000u);
}

TEST(Btb, LruReplacementWithinSet)
{
    Btb btb(8, 2);  // 4 sets x 2 ways; pcs with equal set bits collide
    const Addr stride = 4 * 4;  // set index uses pc>>2
    btb.update(0x1000, 0xA);
    btb.update(0x1000 + stride, 0xB);
    Addr t;
    btb.lookup(0x1000, t);  // refresh entry A
    btb.update(0x1000 + 2 * stride, 0xC);  // evicts B
    EXPECT_TRUE(btb.lookup(0x1000, t));
    EXPECT_FALSE(btb.lookup(0x1000 + stride, t));
    EXPECT_TRUE(btb.lookup(0x1000 + 2 * stride, t));
}

TEST(Ras, PushPopNesting)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    ras.push(0x400);
    EXPECT_EQ(ras.pop(), 0x400u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, SnapshotRestoreAfterWrongPathOps)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    auto snap = ras.snapshot();
    // Wrong path pushes and pops.
    ras.push(0xBAD1);
    ras.pop();
    ras.pop();  // even pops the good entry
    ras.restore(snap);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, WrapsWithoutCrashing)
{
    ReturnAddressStack ras(4);
    for (Addr i = 0; i < 10; ++i)
        ras.push(0x1000 + i);
    // The newest four survive.
    EXPECT_EQ(ras.pop(), 0x1009u);
    EXPECT_EQ(ras.pop(), 0x1008u);
    EXPECT_EQ(ras.pop(), 0x1007u);
    EXPECT_EQ(ras.pop(), 0x1006u);
}
