/**
 * @file
 * Architectural execution semantics for SRV, shared by the functional
 * simulator and the pipeline's execute-at-fetch oracle.
 */

#ifndef SCIQ_ISA_EXEC_HH
#define SCIQ_ISA_EXEC_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace sciq {

/**
 * The state an instruction executes against.  Implemented by the
 * functional core (architectural state) and by the fetch engine
 * (speculative registers + store-queue-forwarded memory).
 *
 * Register reads/writes of the hardwired zero register are filtered by
 * execute() itself; implementations never see them.
 */
class ExecContext
{
  public:
    virtual ~ExecContext() = default;

    virtual std::uint64_t readReg(RegIndex reg) = 0;
    virtual void writeReg(RegIndex reg, std::uint64_t val) = 0;
    virtual std::uint64_t readMem(Addr addr, unsigned size) = 0;
    virtual void writeMem(Addr addr, unsigned size, std::uint64_t val) = 0;
};

/** Outcome of architecturally executing one instruction. */
struct ExecResult
{
    Addr nextPc = 0;       ///< successor PC (target if control taken)
    bool taken = false;    ///< control transfer away from pc+4
    bool halted = false;   ///< a HALT executed
    Addr effAddr = 0;      ///< effective address (memory ops)
    std::uint64_t memValue = 0;  ///< value loaded or stored
};

/** Execute `inst` at `pc` against `xc` and return the outcome. */
ExecResult execute(const Instruction &inst, Addr pc, ExecContext &xc);

} // namespace sciq

#endif // SCIQ_ISA_EXEC_HH
