# Empty dependencies file for test_fuzz_validation.
# This may be replaced when dependencies are built.
