/**
 * @file
 * Randomized crash-recovery harness for the distributed sweep service
 * (DESIGN.md §18).
 *
 * Every trial runs a real coordinator/worker fleet over TCP loopback,
 * kills the coordinator once at a seeded random instant (after a
 * result is journaled, before it is acked — the worst-case window),
 * injects seeded worker-side connection drops and aborts, restarts the
 * coordinator on the same port + journal, and asserts the merged final
 * JSON is byte-identical (modulo the wall-clock fields) to an
 * uninterrupted single-process run.
 *
 * The trial count defaults to 20 (the CI chaos gate) and is overridden
 * with SCIQ_CHAOS_TRIALS=N for longer soaks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/errors.hh"
#include "common/random.hh"
#include "sim/fault_injector.hh"
#include "sim/journal.hh"
#include "sim/shard.hh"
#include "sim/sweep.hh"

using namespace sciq;

namespace {

std::vector<SimConfig>
chaosConfigSet()
{
    std::vector<SimConfig> cfgs;
    for (const auto &wl : {"swim", "gcc"}) {
        for (unsigned size : {32u, 64u}) {
            SimConfig seg = makeSegmentedConfig(size, 32, true, true, wl);
            seg.wl.iterations = 200;
            cfgs.push_back(seg);
        }
        SimConfig ideal = makeIdealConfig(64, wl);
        ideal.wl.iterations = 200;
        cfgs.push_back(ideal);
    }
    return cfgs;
}

/** writeResultsJson with the host wall-clock lines removed. */
std::string
maskedResultsJson(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    writeResultsJson(os, results);
    static const char *masked[] = {
        "\"host_seconds\"", "\"host_kcycles_per_sec\"",
        "\"host_kinsts_per_sec\"", "\"warm_seconds\"",
        "\"warm_insts_per_sec\"",
    };
    std::istringstream is(os.str());
    std::string out, line;
    while (std::getline(is, line)) {
        bool skip = false;
        for (const char *m : masked)
            skip = skip || line.find(m) != std::string::npos;
        if (!skip)
            out += line + "\n";
    }
    return out;
}

std::string
trialJournal(unsigned trial)
{
    return "/tmp/sciq-chaos-" + std::to_string(::getpid()) + "-" +
           std::to_string(trial) + ".jsonl";
}

WorkerOptions
chaosWorkerOptions(const std::string &endpoint, const std::string &name)
{
    WorkerOptions options;
    options.endpoint = endpoint;
    options.name = name;
    options.backoffMs = 0;
    // Tight reconnect policy: trials restart the coordinator within
    // milliseconds, and a worker that outlives the whole sweep (the
    // coordinator finished without it) should give up fast instead of
    // sitting out the 120s production reply timeout.
    options.connectTimeoutMs = 2'000;
    options.replyTimeoutMs = 3'000;
    options.maxReconnects = 10;
    options.reconnectBackoffMs = 20;
    options.reconnectBackoffCapMs = 200;
    return options;
}

struct TrialResult
{
    bool crashFired = false;
    std::vector<RunResult> results;
    ServeStats stats;
    WorkerReport w0, w1;
};

/**
 * One chaos trial: coordinator + 2 workers over TCP loopback, one
 * injected coordinator crash, seeded worker faults, one restart.
 */
TrialResult
runChaosTrial(const std::vector<SimConfig> &cfgs, std::uint64_t seed)
{
    Random rng(seed);
    TrialResult trial;
    const unsigned trialTag =
        static_cast<unsigned>(seed & 0xffffffffu);
    const std::string journal = trialJournal(trialTag);
    std::remove(journal.c_str());

    // The crash instant: after journaling the Nth result, uniformly
    // over the whole sweep (including the very last result, which
    // exercises resume-with-nothing-left-to-do).
    const std::size_t abortAt = 1 + rng.below(cfgs.size());

    ServeOptions base;
    base.shards = 2;
    base.leaseMs = 60'000;
    base.workerGraceMs = 30'000;
    base.heartbeatMs = 500;
    base.journal = journal;
    base.syncJournal = true;
    base.abortExits = false;  // throw: the restart happens in-process

    std::atomic<unsigned> port{0};
    std::thread coord([&] {
        ServeOptions first = base;
        first.endpoint = "127.0.0.1:0";
        first.boundPortOut = &port;
        first.faults = std::make_shared<FaultInjector>(seed);
        first.faults->abortCoordinator =
            static_cast<std::int64_t>(abortAt);
        try {
            trial.results = serveSweep(cfgs, first, &trial.stats);
            return;  // abortAt > results delivered: cannot happen
        } catch (const ResourceError &) {
            trial.crashFired = true;
        }
        // The "supervisor restart": same port, same journal, no
        // faults.  Surviving workers reconnect into this instance.
        ServeOptions second = base;
        second.endpoint = "127.0.0.1:" + std::to_string(port);
        trial.results = serveSweep(cfgs, second, &trial.stats);
    });

    while (port == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::string peer = "127.0.0.1:" + std::to_string(port);

    // Worker faults ride along: w0 severs its connection at a seeded
    // result send (reconnect + redeliver path); w1 sometimes dies
    // outright (lease requeue path, the fleet degrades to one worker).
    WorkerOptions wo0 = chaosWorkerOptions(peer, "w0");
    wo0.faults = std::make_shared<FaultInjector>(seed ^ 0xabcdef);
    wo0.faults->dropConnection =
        static_cast<std::int64_t>(1 + rng.below(3));
    WorkerOptions wo1 = chaosWorkerOptions(peer, "w1");
    if (rng.chance(0.5)) {
        wo1.faults = std::make_shared<FaultInjector>(seed ^ 0x123456);
        wo1.faults->abortWorker =
            static_cast<std::int64_t>(1 + rng.below(2));
        wo1.abortExits = false;
    }

    std::thread w0([&] { trial.w0 = runWorker(wo0); });
    std::thread w1([&] { trial.w1 = runWorker(wo1); });
    w0.join();
    w1.join();
    coord.join();
    std::remove(journal.c_str());
    return trial;
}

} // namespace

TEST(Chaos, CrashAfterFirstResultRecoversByteIdentically)
{
    // The deterministic smoke case: die right after the first result
    // is journaled, before its ack reaches the worker.  The worker
    // must redeliver, the restarted coordinator must dedup against the
    // resumed journal, and the merge must stay byte-identical.
    const std::vector<SimConfig> cfgs = chaosConfigSet();
    const std::string ref = maskedResultsJson(SweepRunner(1).run(cfgs));

    // Probe for a seed whose first draw lands the crash on result 1.
    std::uint64_t seed = 0;
    for (; seed < 64; ++seed) {
        Random probe(seed);
        if (probe.below(cfgs.size()) == 0)
            break;
    }
    ASSERT_LT(seed, 64u) << "no seed with abortAt == 1 found";

    const TrialResult trial = runChaosTrial(cfgs, seed);
    EXPECT_TRUE(trial.crashFired);
    ASSERT_EQ(trial.results.size(), cfgs.size());
    EXPECT_EQ(maskedResultsJson(trial.results), ref);
}

TEST(Chaos, RandomizedCoordinatorKillTrialsStayByteIdentical)
{
    const std::vector<SimConfig> cfgs = chaosConfigSet();
    const std::string ref = maskedResultsJson(SweepRunner(1).run(cfgs));

    unsigned trials = 20;
    if (const char *env = std::getenv("SCIQ_CHAOS_TRIALS"))
        trials = static_cast<unsigned>(std::atoi(env));

    unsigned redeliveries = 0, reconnects = 0;
    for (unsigned t = 0; t < trials; ++t) {
        const std::uint64_t seed = 0x5c1a05ull * 1000 + t;
        const TrialResult trial = runChaosTrial(cfgs, seed);
        ASSERT_TRUE(trial.crashFired) << "trial " << t;
        ASSERT_EQ(trial.results.size(), cfgs.size()) << "trial " << t;
        EXPECT_EQ(maskedResultsJson(trial.results), ref)
            << "trial " << t << " (seed " << seed << ") diverged";
        for (const RunResult &r : trial.results)
            EXPECT_TRUE(r.outcome.ok())
                << "trial " << t << ": " << r.outcome.message;
        redeliveries += trial.w0.redelivered + trial.w1.redelivered;
        reconnects += trial.w0.reconnects + trial.w1.reconnects;
    }
    // The chaos is real: across the batch the reconnect/redeliver
    // machinery must actually have been exercised, not dodged.
    EXPECT_GT(reconnects, 0u);
    EXPECT_GT(redeliveries, 0u);
}

TEST(Chaos, GracefulDrainLeavesAResumableJournal)
{
    // SIGTERM semantics without the signal: flip the stop flag after
    // the first result, assert the coordinator reports interrupted
    // with a valid journal, then restart and finish byte-identically.
    const std::vector<SimConfig> cfgs = chaosConfigSet();
    const std::string ref = maskedResultsJson(SweepRunner(1).run(cfgs));
    const std::string journal = trialJournal(999999);
    std::remove(journal.c_str());

    std::atomic<bool> stop{false};
    ServeOptions base;
    base.shards = 2;
    base.workerGraceMs = 30'000;
    base.heartbeatMs = 500;
    base.journal = journal;
    base.drainGraceMs = 500;

    std::atomic<unsigned> port{0};
    std::vector<RunResult> merged;
    ServeStats firstStats, secondStats;
    std::thread coord([&] {
        ServeOptions first = base;
        first.endpoint = "127.0.0.1:0";
        first.boundPortOut = &port;
        first.stop = &stop;
        first.progress = [&](std::size_t done, std::size_t,
                             const RunResult &) {
            if (done >= 1)
                stop.store(true);
        };
        serveSweep(cfgs, first, &firstStats);

        // The journal a drain leaves is valid and resumable: no torn
        // tail, at least the first result, every row well-formed.
        const auto rows = loadJournal(journal);
        EXPECT_GE(rows.size(), 1u);

        ServeOptions second = base;
        second.endpoint = "127.0.0.1:" + std::to_string(port);
        merged = serveSweep(cfgs, second, &secondStats);
    });

    while (port == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::string peer = "127.0.0.1:" + std::to_string(port);
    WorkerReport r0, r1;
    std::thread w0([&] { r0 = runWorker(chaosWorkerOptions(peer, "w0")); });
    std::thread w1([&] { r1 = runWorker(chaosWorkerOptions(peer, "w1")); });
    w0.join();
    w1.join();
    coord.join();
    std::remove(journal.c_str());

    EXPECT_TRUE(firstStats.interrupted);
    EXPECT_FALSE(secondStats.interrupted);
    ASSERT_EQ(merged.size(), cfgs.size());
    EXPECT_EQ(maskedResultsJson(merged), ref);
}
