// The opcode table and opInfo() moved into opcodes.hh so the lookup
// inlines at every call site (it sits behind the per-instruction
// accessors on the simulator's hottest paths).  This translation unit
// remains so existing build rules keep working.
#include "opcodes.hh"
