/**
 * @file
 * ammp-like kernel: molecular-dynamics pair interactions.
 *
 * A neighbour-index stream gathers particle coordinates, computes a
 * distance (square root) and accumulates an inverse-distance energy
 * term (divide).  Long-latency FP ops plus scattered loads give ammp
 * its high chain usage and queue occupancy in the paper.
 */

#include "workload/kernel_util.hh"
#include "workload/workloads.hh"

namespace sciq {

using namespace kernel;

Program
buildAmmp(const WorkloadParams &params)
{
    // A mostly cache-resident neighbour set (48 KB of coordinates):
    // like the paper's ammp, the load stream largely hits, so the
    // hit/miss predictor can suppress most load chains, while the
    // sqrt/divide chains keep occupancy and chain demand high.
    const std::uint64_t atoms = scaled(2048, params.scale);
    const std::uint64_t n_idx = scaled(16384, params.scale);
    std::uint64_t iters = params.iterations ? params.iterations : 8192;
    if (iters > n_idx)
        iters = n_idx;

    const Addr pos_base = dataBase(0);   // 3 doubles per atom
    const Addr idx_base = dataBase(1);

    AsmBuilder b;
    b.doubles(pos_base, randomDoubles(atoms * 3, params.seed));
    b.words(idx_base, randomIndices(n_idx, atoms, params.seed + 3));
    b.doubles(0x9000, {1.0, 0.03125});

    const RegIndex p_pos = intReg(11), p_idx = intReg(12);
    const RegIndex p_i = intReg(13), count = intReg(14), tmp = intReg(15);
    const RegIndex j = intReg(16), p_j = intReg(17);
    const RegIndex pos_limit = intReg(18);
    const RegIndex one = fpReg(1), eps = fpReg(2), acc = fpReg(3);

    b.la(p_pos, pos_base).la(p_idx, idx_base).la(p_i, pos_base);
    b.la(pos_limit, pos_base + (atoms - 1) * 24);
    b.li(count, static_cast<std::int64_t>(iters));
    b.li(tmp, 0x9000);
    b.fld(one, tmp, 0).fld(eps, tmp, 8);
    b.fsub(acc, acc, acc);

    b.label("loop");
    b.ld(j, p_idx, 0);                 // neighbour index (chain head)
    b.slli(tmp, j, 3);                 // j*8
    b.slli(p_j, j, 4);                 // j*16
    b.add(p_j, p_j, tmp);              // j*24 (3 doubles per atom)
    b.add(p_j, p_j, p_pos);
    const RegIndex xi = fpReg(8), yi = fpReg(9), zi = fpReg(10);
    const RegIndex xj = fpReg(11), yj = fpReg(12), zj = fpReg(13);
    b.fld(xi, p_i, 0).fld(yi, p_i, 8).fld(zi, p_i, 16);
    b.fld(xj, p_j, 0).fld(yj, p_j, 8).fld(zj, p_j, 16);
    const RegIndex dx = fpReg(14), dy = fpReg(15), dz = fpReg(16);
    b.fsub(dx, xi, xj).fsub(dy, yi, yj).fsub(dz, zi, zj);
    b.fmul(dx, dx, dx).fmul(dy, dy, dy).fmul(dz, dz, dz);
    b.fadd(dx, dx, dy);
    b.fadd(dx, dx, dz);
    b.fadd(dx, dx, eps);               // avoid zero distance
    b.fsqrt(fpReg(17), dx);            // r (24-cycle op)
    b.fdiv(fpReg(18), one, fpReg(17)); // 1/r (12-cycle op)
    b.fadd(acc, acc, fpReg(18));
    b.addi(p_i, p_i, 24);
    b.blt(p_i, pos_limit, "nowrap");
    b.mov(p_i, p_pos);  // wrap the self-particle walk
    b.label("nowrap");
    b.addi(p_idx, p_idx, 8);
    b.addi(count, count, -1);
    b.bne(count, intReg(0), "loop");

    epilogueFp(b, acc);
    return b.build("ammp");
}

} // namespace sciq
