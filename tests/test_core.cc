/** @file Integration tests for the out-of-order core pipeline. */

#include <gtest/gtest.h>

#include "core/ooo_core.hh"
#include "isa/asm_builder.hh"
#include "isa/assembler.hh"
#include "isa/functional_core.hh"

using namespace sciq;

namespace {

CoreParams
smallParams(IqKind kind)
{
    CoreParams p;
    p.iqKind = kind;
    p.iq.numEntries = kind == IqKind::Prescheduled ? 128 : 64;
    p.iq.segmentSize = 16;
    p.iq.numFifos = 8;
    p.iq.fifoDepth = 8;
    return p;
}

Program
sumLoop(int n)
{
    AsmBuilder b;
    b.addi(intReg(1), intReg(0), n);
    b.addi(intReg(2), intReg(0), 0);
    b.label("loop");
    b.add(intReg(2), intReg(2), intReg(1));
    b.addi(intReg(1), intReg(1), -1);
    b.bne(intReg(1), intReg(0), "loop");
    b.halt();
    return b.build("sum");
}

} // namespace

class CorePerIq : public ::testing::TestWithParam<IqKind> {};

TEST_P(CorePerIq, SumLoopMatchesFunctionalModel)
{
    Program prog = sumLoop(200);
    OooCore core(prog, smallParams(GetParam()));
    core.run(~0ULL, 200000);
    ASSERT_TRUE(core.halted()) << iqKindName(GetParam());

    FunctionalCore golden(prog);
    golden.run();
    EXPECT_EQ(core.committedCount(), golden.instCount());
    for (RegIndex r = 1; r < kNumArchRegs; ++r)
        EXPECT_EQ(core.commitRegs()[r], golden.reg(r)) << "reg " << r;
    EXPECT_EQ(core.commitRegs()[intReg(2)], 200u * 201u / 2u);
}

TEST_P(CorePerIq, StoresReachCommittedMemory)
{
    Program prog = assemble(R"(
        lui r1, 8
        addi r2, r0, 4321
        st r2, 0(r1)
        sw r2, 8(r1)
        ld r3, 0(r1)
        halt
    )");
    OooCore core(prog, smallParams(GetParam()));
    core.run(~0ULL, 100000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.commitMemory().read(0x20000, 8), 4321u);
    EXPECT_EQ(core.commitMemory().read(0x20008, 4), 4321u);
    EXPECT_EQ(core.commitRegs()[intReg(3)], 4321u);
}

INSTANTIATE_TEST_SUITE_P(AllIqKinds, CorePerIq,
                         ::testing::Values(IqKind::Ideal, IqKind::Segmented,
                                           IqKind::Prescheduled,
                                           IqKind::Fifo),
                         [](const auto &info) {
                             return iqKindName(info.param);
                         });

TEST(Core, IndependentWorkExploitsWidth)
{
    AsmBuilder b;
    // 512 independent single-cycle instructions.
    for (int i = 0; i < 512; ++i)
        b.addi(intReg(1 + (i % 24)), intReg(0), i % 1000);
    b.halt();
    OooCore core(b.build(), smallParams(IqKind::Ideal));
    core.run(~0ULL, 100000);
    ASSERT_TRUE(core.halted());
    EXPECT_GT(core.ipc(), 4.0);  // an 8-wide machine should fly
}

TEST(Core, DependentChainLimitsToOnePerCycle)
{
    AsmBuilder b;
    const int n = 400;
    b.addi(intReg(1), intReg(0), 1);
    for (int i = 0; i < n; ++i)
        b.add(intReg(1), intReg(1), intReg(1));  // serial chain
    b.halt();
    OooCore core(b.build(), smallParams(IqKind::Ideal));
    core.run(~0ULL, 100000);
    ASSERT_TRUE(core.halted());
    // Back-to-back issue of single-cycle dependants: about one per
    // cycle plus pipeline fill.
    EXPECT_GT(core.cycles(), static_cast<Cycle>(n));
    EXPECT_LT(core.cycles(), static_cast<Cycle>(n + 80));
}

TEST(Core, BackToBackAlsoWorksInSegmentedSegmentZero)
{
    AsmBuilder b;
    const int n = 300;
    b.addi(intReg(1), intReg(0), 1);
    for (int i = 0; i < n; ++i)
        b.add(intReg(1), intReg(1), intReg(1));
    b.halt();
    OooCore core(b.build(), smallParams(IqKind::Segmented));
    core.run(~0ULL, 100000);
    ASSERT_TRUE(core.halted());
    EXPECT_LT(core.cycles(), static_cast<Cycle>(n + 120));
}

TEST(Core, MispredictsResolveAndSquash)
{
    // A data-dependent branch pattern the predictor cannot learn.
    Program prog = assemble(R"(
        addi r1, r0, 2000
        addi r5, r0, 4321
    loop:
        slli r6, r5, 13
        xor  r5, r5, r6
        srli r6, r5, 7
        xor  r5, r5, r6
        andi r6, r5, 1
        beq  r6, r0, skip
        addi r2, r2, 1
    skip:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    )");
    CoreParams p = smallParams(IqKind::Ideal);
    OooCore core(prog, p);
    core.run(~0ULL, 500000);
    ASSERT_TRUE(core.halted());
    EXPECT_GT(core.mispredictsResolved.value(), 200.0);
    EXPECT_GT(core.squashes.value(), 200.0);
    EXPECT_GT(core.wrongPathInsts.value(), 0.0);

    // And the result is still architecturally exact.
    FunctionalCore golden(prog);
    golden.run();
    EXPECT_EQ(core.commitRegs()[intReg(2)], golden.reg(intReg(2)));
}

TEST(Core, WrongPathCanBeDisabled)
{
    Program prog = sumLoop(50);
    CoreParams p = smallParams(IqKind::Ideal);
    p.modelWrongPath = false;
    OooCore core(prog, p);
    core.run(~0ULL, 100000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.wrongPathInsts.value(), 0.0);
}

TEST(Core, StoreToLoadForwardingHappens)
{
    AsmBuilder b;
    b.la(intReg(1), 0x20000);
    b.addi(intReg(4), intReg(0), 100);
    b.label("loop");
    b.addi(intReg(2), intReg(2), 3);
    b.st(intReg(2), intReg(1), 0);
    b.ld(intReg(3), intReg(1), 0);  // immediately reload
    b.addi(intReg(4), intReg(4), -1);
    b.bne(intReg(4), intReg(0), "loop");
    b.halt();
    OooCore core(b.build(), smallParams(IqKind::Ideal));
    core.run(~0ULL, 100000);
    ASSERT_TRUE(core.halted());
    EXPECT_GT(core.lsqUnit().loadForwards.value(), 50.0);
    EXPECT_EQ(core.commitRegs()[intReg(3)], 300u);
}

TEST(Core, FrontEndDepthBoundsBestCaseLatency)
{
    // Even a single instruction pays the 15-cycle front end.
    Program prog = assemble("halt\n");
    OooCore core(prog, smallParams(IqKind::Ideal));
    core.run(~0ULL, 1000);
    ASSERT_TRUE(core.halted());
    EXPECT_GE(core.cycles(), 15u);
    EXPECT_LT(core.cycles(), 40u);
}

TEST(Core, SegmentedPaysExtraDispatchCycle)
{
    Program prog = assemble("halt\n");
    OooCore ideal(prog, smallParams(IqKind::Ideal));
    ideal.run(~0ULL, 1000);
    OooCore seg(prog, smallParams(IqKind::Segmented));
    seg.run(~0ULL, 1000);
    EXPECT_EQ(seg.cycles(), ideal.cycles() + 1);
}

TEST(Core, RobSizeDefaultsToThreeTimesIq)
{
    CoreParams p;
    p.iq.numEntries = 512;
    p.finalize();
    EXPECT_EQ(p.robSize, 1536u);
    EXPECT_EQ(p.lsqSize, 1536u);
    EXPECT_GT(p.numPhysRegs, 1536u + kNumArchRegs);
}

TEST(Core, LongLatencyOpsOverlapInIdealWindow)
{
    // 64 independent FP divides on 8 unpipelined units: about
    // 64/8 * 12 cycles once the window holds them all.
    AsmBuilder b;
    for (int i = 0; i < 64; ++i)
        b.fdiv(fpReg(1 + (i % 24)), fpReg(25), fpReg(26));
    b.halt();
    OooCore core(b.build(), smallParams(IqKind::Ideal));
    core.run(~0ULL, 10000);
    ASSERT_TRUE(core.halted());
    EXPECT_LT(core.cycles(), 200u);
    EXPECT_GE(core.cycles(), 96u);  // 8 batches x 12 cycles
}

TEST(Core, HaltOnWrongPathDoesNotEndSimulation)
{
    // The branch skips the halt; speculation may fetch it, but the
    // program must keep running to the real halt.
    Program prog = assemble(R"(
        addi r1, r0, 50
    loop:
        addi r1, r1, -1
        beq r1, r0, out
        j loop
    out:
        addi r2, r0, 7
        halt
    )");
    OooCore core(prog, smallParams(IqKind::Ideal));
    core.run(~0ULL, 100000);
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.commitRegs()[intReg(2)], 7u);
}
