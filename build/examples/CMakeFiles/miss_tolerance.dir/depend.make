# Empty dependencies file for miss_tolerance.
# This may be replaced when dependencies are built.
