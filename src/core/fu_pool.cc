#include "fu_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sciq {

FuPool::FuPool(const FuPoolParams &p) : params(p), statsGroup("fu")
{
    auto init = [](Pool &pool, unsigned units) {
        pool.units = units;
        pool.busyUntil.assign(units, 0);
    };
    init(pools[PoolIntAlu], p.intAluUnits);
    init(pools[PoolIntMul], p.intMulUnits);
    init(pools[PoolFpAdd], p.fpAddUnits);
    init(pools[PoolFpMul], p.fpMulUnits);
    init(pools[PoolPorts], p.cachePorts);

    statsGroup.addScalar("structural_stalls", &structuralStalls,
                         "issue attempts rejected by busy units");
}

unsigned
FuPool::latency(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Jump:
      case OpClass::MemRead:   // address generation
      case OpClass::MemWrite:  // address generation
      case OpClass::Nop:
      case OpClass::Halt:
        return params.intAluLat;
      case OpClass::IntMul:
        return params.intMulLat;
      case OpClass::IntDiv:
        return params.intDivLat;
      case OpClass::FpAdd:
        return params.fpAddLat;
      case OpClass::FpMul:
        return params.fpMulLat;
      case OpClass::FpDiv:
        return params.fpDivLat;
      case OpClass::FpSqrt:
        return params.fpSqrtLat;
      case OpClass::NumClasses:
        break;
    }
    panic("latency of invalid op class");
}

unsigned
FuPool::maxLatency() const
{
    unsigned m = params.intAluLat;
    m = std::max(m, params.intMulLat);
    m = std::max(m, params.intDivLat);
    m = std::max(m, params.fpAddLat);
    m = std::max(m, params.fpMulLat);
    m = std::max(m, params.fpDivLat);
    m = std::max(m, params.fpSqrtLat);
    return m;
}

FuPool::PoolId
FuPool::poolOf(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Jump:
      case OpClass::MemRead:
      case OpClass::MemWrite:
      case OpClass::Nop:
      case OpClass::Halt:
        return PoolIntAlu;
      case OpClass::IntMul:
      case OpClass::IntDiv:
        return PoolIntMul;
      case OpClass::FpAdd:
        return PoolFpAdd;
      case OpClass::FpMul:
      case OpClass::FpDiv:
      case OpClass::FpSqrt:
        return PoolFpMul;
      default:
        panic("pool of invalid op class");
    }
}

void
FuPool::beginCycle(Cycle)
{
    // Nothing to do with the busy-until representation; kept for
    // interface stability (and future per-cycle issue caps).
}

bool
FuPool::tryAcquire(OpClass cls, Cycle cycle)
{
    Pool &pool = pools[poolOf(cls)];

    // Divide and sqrt monopolise their unit; everything else is fully
    // pipelined and only occupies the issue slot for one cycle.
    const bool unpipelined = cls == OpClass::IntDiv ||
                             cls == OpClass::FpDiv ||
                             cls == OpClass::FpSqrt;
    const Cycle occupy = unpipelined ? latency(cls) : 1;

    for (unsigned u = 0; u < pool.units; ++u) {
        if (pool.busyUntil[u] <= cycle) {
            pool.busyUntil[u] = cycle + occupy;
            return true;
        }
    }
    structuralStalls.inc();
    return false;
}

bool
FuPool::tryAcquirePort(Cycle cycle)
{
    Pool &pool = pools[PoolPorts];
    for (unsigned u = 0; u < pool.units; ++u) {
        if (pool.busyUntil[u] <= cycle) {
            pool.busyUntil[u] = cycle + 1;
            return true;
        }
    }
    return false;
}

} // namespace sciq
