file(REMOVE_RECURSE
  "CMakeFiles/sciq_workload.dir/ammp.cc.o"
  "CMakeFiles/sciq_workload.dir/ammp.cc.o.d"
  "CMakeFiles/sciq_workload.dir/applu.cc.o"
  "CMakeFiles/sciq_workload.dir/applu.cc.o.d"
  "CMakeFiles/sciq_workload.dir/equake.cc.o"
  "CMakeFiles/sciq_workload.dir/equake.cc.o.d"
  "CMakeFiles/sciq_workload.dir/gcc_like.cc.o"
  "CMakeFiles/sciq_workload.dir/gcc_like.cc.o.d"
  "CMakeFiles/sciq_workload.dir/mgrid.cc.o"
  "CMakeFiles/sciq_workload.dir/mgrid.cc.o.d"
  "CMakeFiles/sciq_workload.dir/registry.cc.o"
  "CMakeFiles/sciq_workload.dir/registry.cc.o.d"
  "CMakeFiles/sciq_workload.dir/swim.cc.o"
  "CMakeFiles/sciq_workload.dir/swim.cc.o.d"
  "CMakeFiles/sciq_workload.dir/twolf.cc.o"
  "CMakeFiles/sciq_workload.dir/twolf.cc.o.d"
  "CMakeFiles/sciq_workload.dir/vortex.cc.o"
  "CMakeFiles/sciq_workload.dir/vortex.cc.o.d"
  "libsciq_workload.a"
  "libsciq_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciq_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
