/**
 * @file
 * Left/right operand predictor (paper section 4.3): a PC-indexed table
 * of 2-bit saturating counters predicting which of a two-source
 * instruction's operands will arrive *later* (the critical one).  The
 * instruction then follows only that operand's chain, halving per-entry
 * chain-tracking hardware and saving chain allocations.
 */

#ifndef SCIQ_BRANCH_LEFT_RIGHT_PREDICTOR_HH
#define SCIQ_BRANCH_LEFT_RIGHT_PREDICTOR_HH

#include <vector>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/sat_counter.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace sciq {

class LeftRightPredictor
{
  public:
    explicit LeftRightPredictor(unsigned entries = 4096)
        : statsGroup("lrp"), table(entries, SatCounter(2, 1))
    {
        SCIQ_ASSERT(isPowerOf2(entries), "LRP size must be pow2");
        statsGroup.addScalar("predicts", &predicts, "LRP lookups");
        statsGroup.addScalar("mispredicts", &mispredicts,
                             "times the other operand arrived later");
    }

    /** Prediction without statistics side effects (for canInsert). */
    bool
    peekLeftCritical(Addr pc) const
    {
        return table[index(pc)].isSet();
    }

    /** True = the LEFT (first) operand is predicted critical (later). */
    bool
    predictLeftCritical(Addr pc)
    {
        predicts.inc();
        return table[index(pc)].isSet();
    }

    /** Train with which operand actually arrived later. */
    void
    update(Addr pc, bool left_was_later)
    {
        if (left_was_later)
            table[index(pc)].increment();
        else
            table[index(pc)].decrement();
    }

    /** Serialize the counter table and statistics counters. */
    void
    save(serial::Writer &w) const
    {
        w.u64(table.size());
        for (const SatCounter &c : table)
            w.u8(static_cast<std::uint8_t>(c.read()));
        w.f64(predicts.value());
        w.f64(mispredicts.value());
    }

    /** Restore a snapshot; table size must match (serial::Error). */
    void
    restore(serial::Reader &r)
    {
        const std::uint64_t n = r.u64();
        if (n != table.size()) {
            throw serial::Error("LRP size mismatch: snapshot " +
                                std::to_string(n) + ", configured " +
                                std::to_string(table.size()));
        }
        for (SatCounter &c : table)
            c.set(r.u8());
        predicts.set(r.f64());
        mispredicts.set(r.f64());
    }

    stats::Group &statGroup() { return statsGroup; }

    stats::Scalar predicts;
    stats::Scalar mispredicts;

  private:
    std::size_t index(Addr pc) const
    {
        return (pc >> 2) & (table.size() - 1);
    }

    stats::Group statsGroup;
    std::vector<SatCounter> table;
};

} // namespace sciq

#endif // SCIQ_BRANCH_LEFT_RIGHT_PREDICTOR_HH
