/**
 * @file
 * Saturating counter, the workhorse of every table-based predictor.
 */

#ifndef SCIQ_COMMON_SAT_COUNTER_HH
#define SCIQ_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "logging.hh"

namespace sciq {

/**
 * An n-bit saturating up/down counter.
 *
 * Used by the branch predictor (2- and 3-bit counters), the left/right
 * operand predictor (2-bit) and the hit/miss predictor (4-bit).
 */
class SatCounter
{
  public:
    SatCounter() = default;

    /**
     * @param num_bits Width of the counter (1..16).
     * @param initial Initial value (clamped to the maximum).
     */
    explicit SatCounter(unsigned num_bits, unsigned initial = 0)
        : maxVal((1u << num_bits) - 1),
          value(initial > maxVal ? maxVal : initial)
    {
        SCIQ_ASSERT(num_bits >= 1 && num_bits <= 16,
                    "counter width %u out of range", num_bits);
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value < maxVal)
            ++value;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value > 0)
            --value;
    }

    /** Reset to zero (the hit/miss predictor clears on a miss). */
    void reset() { value = 0; }

    /** Set to an explicit value (clamped). */
    void set(unsigned v) { value = v > maxVal ? maxVal : v; }

    /** Current count. */
    unsigned read() const { return value; }

    /** Maximum representable count. */
    unsigned max() const { return maxVal; }

    /** True if the counter is in its upper half (taken / hit / left). */
    bool isSet() const { return value > maxVal / 2; }

  private:
    unsigned maxVal = 3;
    unsigned value = 0;
};

} // namespace sciq

#endif // SCIQ_COMMON_SAT_COUNTER_HH
