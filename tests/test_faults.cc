/**
 * @file
 * Negative tests for the fault-injection / detection / recovery matrix
 * (DESIGN.md §13): each seeded fault must trip exactly the detection
 * path it targets, and each recovery path (retry, cache repair,
 * containment) must actually recover.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/errors.hh"
#include "sim/checkpoint.hh"
#include "sim/fault_injector.hh"
#include "sim/journal.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"

using namespace sciq;
namespace fs = std::filesystem;

namespace {

/** Fresh scratch directory under the system temp dir, per test. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_(fs::temp_directory_path() / ("sciq-fault-test-" + name))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }
    fs::path operator/(const std::string &leaf) const { return path_ / leaf; }

  private:
    fs::path path_;
};

SimConfig
smallConfig(const std::string &workload = "swim")
{
    SimConfig cfg = makeSegmentedConfig(64, 32, true, true, workload);
    cfg.wl.iterations = 200;
    return cfg;
}

// ---------------------------------------------------------------------
// FaultInjector unit behaviour.

TEST(FaultInjector, BudgetCountsDownAtomically)
{
    FaultInjector fi(7);
    fi.failDiskWrites = 2;
    EXPECT_TRUE(fi.takeDiskWriteFault());
    EXPECT_TRUE(fi.takeDiskWriteFault());
    EXPECT_FALSE(fi.takeDiskWriteFault());
    EXPECT_EQ(fi.failedWrites(), 2u);
}

TEST(FaultInjector, NegativeBudgetIsUnlimited)
{
    FaultInjector fi(7);
    fi.corruptCkptReads = -1;
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(fi.takeCorruptRead());
    EXPECT_EQ(fi.corruptedReads(), 10u);
}

TEST(FaultInjector, CorruptionIsSeededDeterministic)
{
    const std::string original(4096, 'x');

    std::string a = original, b = original;
    FaultInjector(42).corrupt(a);
    FaultInjector(42).corrupt(b);
    EXPECT_NE(a, original);
    EXPECT_EQ(a, b) << "same seed must corrupt identically";

    std::string c = original;
    FaultInjector(43).corrupt(c);
    EXPECT_NE(c, a) << "different seed must corrupt differently";
}

// ---------------------------------------------------------------------
// Commit-stall fault -> watchdog detection.

TEST(Watchdog, InjectedCommitStallThrowsDeadlockWithDump)
{
    SimConfig cfg = smallConfig();
    cfg.wl.iterations = 5000;
    cfg.core.faultCommitStallAt = 200;
    cfg.core.watchdogCycles = 2000;

    Simulator sim(cfg);
    try {
        sim.run();
        FAIL() << "expected DeadlockError";
    } catch (const DeadlockError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Deadlock);
        EXPECT_FALSE(e.isTimeout());
        EXPECT_NE(std::string(e.what()).find("no instruction committed"),
                  std::string::npos);
        // The embedded pipeline dump names the core and IQ state.
        EXPECT_NE(e.context().find("core state"), std::string::npos);
        EXPECT_NE(e.context().find("rob="), std::string::npos);
        EXPECT_NE(e.context().find("segmented iq"), std::string::npos);
        EXPECT_NE(e.context().find("segment 0"), std::string::npos);
    }
}

TEST(Watchdog, CleanRunsNeverTrip)
{
    SimConfig cfg = smallConfig();
    cfg.core.watchdogCycles = 2000;  // far below the 1M default
    RunResult r = runSim(cfg);
    EXPECT_TRUE(r.haltedCleanly);
    EXPECT_TRUE(r.validated);
}

TEST(Watchdog, ZeroDisables)
{
    SimConfig cfg = smallConfig();
    cfg.wl.iterations = 50;
    cfg.core.faultCommitStallAt = 200;
    cfg.core.watchdogCycles = 0;
    cfg.maxCycles = 5000;  // the cap, not the watchdog, ends the run
    cfg.validate = false;
    RunResult r = runSim(cfg);
    EXPECT_FALSE(r.haltedCleanly);
}

TEST(Watchdog, SweepContainsDeadlockAndWritesArtifact)
{
    ScratchDir dir("artifacts");
    std::vector<SimConfig> cfgs = {smallConfig(), smallConfig("gcc")};
    cfgs[0].wl.iterations = 5000;
    cfgs[0].core.faultCommitStallAt = 200;
    cfgs[0].core.watchdogCycles = 2000;

    SweepRunner::Options options;
    options.artifactDir = dir.str();
    std::vector<RunResult> results = SweepRunner(2).run(cfgs, options);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].outcome.status, JobOutcome::Status::Failed);
    EXPECT_EQ(results[0].outcome.code, ErrorCode::Deadlock);
    EXPECT_TRUE(results[1].outcome.ok());
    EXPECT_TRUE(results[1].validated);

    const std::string artifact = (dir / "job0-deadlock.dump").string();
    ASSERT_TRUE(fs::exists(artifact)) << artifact;
    EXPECT_GT(fs::file_size(artifact), 100u);
}

// ---------------------------------------------------------------------
// Wall-clock deadline -> timeout classification.

TEST(Deadline, ExpiredDeadlineIsTimeout)
{
    SimConfig cfg = smallConfig("ammp");
    cfg.wl.iterations = 100000;  // long enough to outlive the deadline
    cfg.deadlineSec = 1e-9;
    cfg.validate = false;

    try {
        runSim(cfg);
        FAIL() << "expected DeadlockError timeout";
    } catch (const DeadlockError &e) {
        EXPECT_TRUE(e.isTimeout());
        EXPECT_FALSE(e.context().empty());
    }

    std::vector<SimConfig> cfgs = {cfg};
    std::vector<RunResult> results = SweepRunner(1).run(cfgs);
    EXPECT_EQ(results[0].outcome.status, JobOutcome::Status::Timeout);
    EXPECT_EQ(results[0].outcome.code, ErrorCode::Deadlock);
}

// ---------------------------------------------------------------------
// Checkpoint corruption / disk faults -> retry and repair paths.

TEST(CheckpointFaults, CorruptReadExhaustsRetriesIntoFailedOutcome)
{
    ScratchDir dir("corrupt-exhaust");
    SimConfig cfg = smallConfig("mgrid");
    cfg.fastForward = 1500;
    cfg.ckptFile = (dir / "warm.sciqckpt").string();

    // Seed a valid checkpoint, and keep the pristine result to prove
    // bit-identity of the co-scheduled healthy job later.
    RunResult pristine = runSim(cfg);
    ASSERT_TRUE(fs::exists(cfg.ckptFile));

    SimConfig faulted = cfg;
    faulted.faults = std::make_shared<FaultInjector>(42);
    faulted.faults->corruptCkptReads = -1;  // every attempt, every retry

    std::vector<SimConfig> cfgs = {faulted, cfg};
    SweepRunner::Options options;
    options.maxRetries = 2;
    options.backoffMs = 1;
    std::vector<RunResult> results = SweepRunner(1).run(cfgs, options);

    EXPECT_EQ(results[0].outcome.status, JobOutcome::Status::Failed);
    EXPECT_EQ(results[0].outcome.code, ErrorCode::Checkpoint);
    EXPECT_EQ(results[0].outcome.attempts, 3u) << "retries must be burned";
    EXPECT_EQ(faulted.faults->corruptedReads(), 3u);

    // The healthy job sharing the sweep is untouched, bit-identical.
    EXPECT_TRUE(results[1].outcome.ok());
    EXPECT_EQ(results[1].cycles, pristine.cycles);
    EXPECT_EQ(results[1].insts, pristine.insts);
    EXPECT_TRUE(results[1].validated);
}

TEST(CheckpointFaults, SingleCorruptReadRecoversOnRetry)
{
    ScratchDir dir("corrupt-retry");
    SimConfig cfg = smallConfig("applu");
    cfg.fastForward = 1500;
    cfg.ckptFile = (dir / "warm.sciqckpt").string();
    RunResult pristine = runSim(cfg);

    SimConfig faulted = cfg;
    faulted.faults = std::make_shared<FaultInjector>(7);
    faulted.faults->corruptCkptReads = 1;  // first attempt only

    std::vector<SimConfig> cfgs = {faulted};
    SweepRunner::Options options;
    options.maxRetries = 2;
    options.backoffMs = 1;
    std::vector<RunResult> results = SweepRunner(1).run(cfgs, options);

    EXPECT_TRUE(results[0].outcome.ok());
    EXPECT_EQ(results[0].outcome.attempts, 2u);
    EXPECT_TRUE(results[0].outcome.retried());
    EXPECT_EQ(results[0].cycles, pristine.cycles);
    EXPECT_EQ(results[0].insts, pristine.insts);
    EXPECT_TRUE(results[0].ckptRestored);
}

TEST(CheckpointFaults, TransientDiskWriteFailureRecoversOnRetry)
{
    ScratchDir dir("disk-retry");
    SimConfig cfg = smallConfig("equake");
    cfg.fastForward = 1500;
    cfg.ckptFile = (dir / "warm.sciqckpt").string();
    cfg.faults = std::make_shared<FaultInjector>(11);
    cfg.faults->failDiskWrites = 1;

    std::vector<SimConfig> cfgs = {cfg};
    SweepRunner::Options options;
    options.maxRetries = 2;
    options.backoffMs = 1;
    std::vector<RunResult> results = SweepRunner(1).run(cfgs, options);

    EXPECT_TRUE(results[0].outcome.ok());
    EXPECT_EQ(results[0].outcome.attempts, 2u);
    EXPECT_EQ(cfg.faults->failedWrites(), 1u);
    EXPECT_TRUE(fs::exists(cfg.ckptFile)) << "retry must persist the blob";
}

TEST(CheckpointFaults, CacheModeCorruptionTakesRepairPath)
{
    // In cache mode a damaged blob is not an error: warmUp logs,
    // re-warms cold and republishes (PR-4's repair path).  The fault
    // injector must exercise that path, not kill the job.
    ScratchDir dir("cache-repair");
    SimConfig cfg = smallConfig("ammp");
    cfg.fastForward = 1500;
    cfg.ckptDir = dir.str();

    RunResult first = runSim(cfg);  // produces the cache entry
    EXPECT_FALSE(first.ckptRestored);

    SimConfig faulted = cfg;
    faulted.faults = std::make_shared<FaultInjector>(99);
    faulted.faults->corruptCkptReads = 1;
    RunResult second = runSim(faulted);

    EXPECT_TRUE(second.outcome.ok());
    EXPECT_FALSE(second.ckptRestored) << "repair re-warms cold";
    EXPECT_EQ(second.cycles, first.cycles);
    EXPECT_TRUE(second.validated);

    // The republished entry is clean again.
    RunResult third = runSim(cfg);
    EXPECT_TRUE(third.ckptRestored);
    EXPECT_EQ(third.cycles, first.cycles);
}

// ---------------------------------------------------------------------
// Over-promotion fault -> auditor detection (through the taxonomy).

TEST(AuditFaults, InjectedOverPromotionContainedInSweep)
{
    SimConfig cfg = smallConfig();
    cfg.wl.iterations = 300;
    cfg.audit = true;
    cfg.auditPanic = true;
    cfg.core.iq.auditInjectOverPromote = true;

    std::vector<SimConfig> cfgs = {cfg};
    std::vector<RunResult> results = SweepRunner(1).run(cfgs);
    EXPECT_EQ(results[0].outcome.status, JobOutcome::Status::Failed);
    EXPECT_EQ(results[0].outcome.code, ErrorCode::Invariant);
}

// ---------------------------------------------------------------------
// Config keys end to end.

TEST(FaultKeys, ConfigMapBuildsInjectorAndWatchdog)
{
    SimConfig cfg;
    ConfigMap m;
    m.set("watchdog_cycles", "12345");
    m.set("deadline_sec", "2.5");
    m.set("fault_commit_stall", "777");
    m.set("fault_overpromote", "1");
    m.set("fault_seed", "99");
    m.set("fault_ckpt_corrupt", "-1");
    m.set("fault_disk_fail", "3");
    cfg.apply(m);

    EXPECT_EQ(cfg.core.watchdogCycles, 12345u);
    EXPECT_DOUBLE_EQ(cfg.deadlineSec, 2.5);
    EXPECT_EQ(cfg.core.faultCommitStallAt, 777u);
    EXPECT_TRUE(cfg.core.iq.auditInjectOverPromote);
    ASSERT_NE(cfg.faults, nullptr);
    EXPECT_EQ(cfg.faults->seed(), 99u);
    EXPECT_EQ(cfg.faults->corruptCkptReads.load(), -1);
    EXPECT_EQ(cfg.faults->failDiskWrites.load(), 3);
}

} // namespace
