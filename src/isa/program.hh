/**
 * @file
 * A loadable SRV program: code at a base address plus initialised data
 * blobs.  The fetch stage indexes code by PC; the loader copies data
 * blobs into simulated memory before execution.
 */

#ifndef SCIQ_ISA_PROGRAM_HH
#define SCIQ_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace sciq {

class SparseMemory;

class Program
{
  public:
    /** Default code base address. */
    static constexpr Addr kDefaultBase = 0x1000;

    explicit Program(Addr base = kDefaultBase) : codeBase(base) {}

    /** Append one instruction; returns its PC. */
    Addr
    append(const Instruction &inst)
    {
        code.push_back(inst);
        return codeBase + (code.size() - 1) * kInstBytes;
    }

    /** Instruction at `pc`, or nullptr if pc is outside the code. */
    const Instruction *
    fetch(Addr pc) const
    {
        if (pc < codeBase || (pc - codeBase) % kInstBytes != 0)
            return nullptr;
        Addr idx = (pc - codeBase) / kInstBytes;
        if (idx >= code.size())
            return nullptr;
        return &code[idx];
    }

    /** True if `pc` addresses an instruction of this program. */
    bool contains(Addr pc) const { return fetch(pc) != nullptr; }

    Addr base() const { return codeBase; }
    Addr entry() const { return codeBase; }
    std::size_t size() const { return code.size(); }
    const std::vector<Instruction> &instructions() const { return code; }

    /** PC of instruction index i. */
    Addr pcOf(std::size_t i) const { return codeBase + i * kInstBytes; }

    /** Register an initialised-data blob to be loaded before running. */
    void
    addData(Addr addr, std::vector<std::uint8_t> bytes)
    {
        data.push_back({addr, std::move(bytes)});
    }

    /** Convenience: lay down an array of doubles. */
    void addDoubles(Addr addr, const std::vector<double> &values);

    /** Convenience: lay down an array of 64-bit integers. */
    void addWords(Addr addr, const std::vector<std::uint64_t> &values);

    /** Copy all data blobs (and the encoded code image) into memory. */
    void load(SparseMemory &mem) const;

    /**
     * Content fingerprint over base address, code and data blobs.
     * Checkpoints embed it so a snapshot can only be restored against
     * the exact program it was taken from.
     */
    std::uint64_t checksum() const;

    /** Human-readable name (set by the workload registry). */
    std::string name = "program";

  private:
    struct Blob
    {
        Addr addr;
        std::vector<std::uint8_t> bytes;
    };

    Addr codeBase;
    std::vector<Instruction> code;
    std::vector<Blob> data;
};

} // namespace sciq

#endif // SCIQ_ISA_PROGRAM_HH
