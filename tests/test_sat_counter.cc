/** @file Unit tests for the saturating counters behind every predictor. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/sat_counter.hh"

using namespace sciq;

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.read(), 3u);
    EXPECT_EQ(c.max(), 3u);
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.read(), 0u);
}

TEST(SatCounter, InitialClamped)
{
    SatCounter c(2, 99);
    EXPECT_EQ(c.read(), 3u);
}

TEST(SatCounter, IsSetThreshold)
{
    SatCounter c(2, 1);
    EXPECT_FALSE(c.isSet());  // 1 <= 3/2
    c.increment();
    EXPECT_TRUE(c.isSet());   // 2 > 1
}

TEST(SatCounter, ResetClearsToZero)
{
    SatCounter c(4, 15);
    c.reset();
    EXPECT_EQ(c.read(), 0u);
}

TEST(SatCounter, FourBitRangeForHmp)
{
    // The hit/miss predictor uses 4-bit counters with threshold 13.
    SatCounter c(4, 0);
    for (int i = 0; i < 13; ++i)
        c.increment();
    EXPECT_FALSE(c.read() > 13);
    c.increment();
    EXPECT_TRUE(c.read() > 13);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.read(), 15u);
}

TEST(SatCounter, InvalidWidthPanics)
{
    EXPECT_THROW(SatCounter(0), PanicError);
    EXPECT_THROW(SatCounter(17), PanicError);
}

class SatCounterWidth : public ::testing::TestWithParam<unsigned> {};

TEST_P(SatCounterWidth, MaxMatchesWidth)
{
    const unsigned bits = GetParam();
    SatCounter c(bits, 0);
    EXPECT_EQ(c.max(), (1u << bits) - 1);
    c.set((1u << bits) + 5);
    EXPECT_EQ(c.read(), c.max());
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u));
