file(REMOVE_RECURSE
  "CMakeFiles/sciq_iq.dir/fifo_iq.cc.o"
  "CMakeFiles/sciq_iq.dir/fifo_iq.cc.o.d"
  "CMakeFiles/sciq_iq.dir/ideal_iq.cc.o"
  "CMakeFiles/sciq_iq.dir/ideal_iq.cc.o.d"
  "CMakeFiles/sciq_iq.dir/iq_base.cc.o"
  "CMakeFiles/sciq_iq.dir/iq_base.cc.o.d"
  "CMakeFiles/sciq_iq.dir/prescheduled_iq.cc.o"
  "CMakeFiles/sciq_iq.dir/prescheduled_iq.cc.o.d"
  "CMakeFiles/sciq_iq.dir/segmented_iq.cc.o"
  "CMakeFiles/sciq_iq.dir/segmented_iq.cc.o.d"
  "libsciq_iq.a"
  "libsciq_iq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sciq_iq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
