/** @file End-to-end tests of the functional (golden) simulator. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/asm_builder.hh"
#include "isa/assembler.hh"
#include "isa/functional_core.hh"

using namespace sciq;

TEST(FunctionalCore, Fibonacci)
{
    Program p = assemble(R"(
        addi r1, r0, 0      # fib(0)
        addi r2, r0, 1      # fib(1)
        addi r3, r0, 20     # count
    loop:
        add r4, r1, r2
        addi r1, r2, 0
        addi r2, r4, 0
        addi r3, r3, -1
        bne r3, r0, loop
        halt
    )");
    FunctionalCore core(p);
    core.run();
    EXPECT_EQ(core.reg(intReg(1)), 6765u);   // fib(20)
    EXPECT_EQ(core.reg(intReg(2)), 10946u);  // fib(21)
}

TEST(FunctionalCore, MemoryCopyLoop)
{
    AsmBuilder b;
    b.words(0x10000, {10, 20, 30, 40, 50});
    b.la(intReg(1), 0x10000);
    b.la(intReg(2), 0x20000);
    b.addi(intReg(3), intReg(0), 5);
    b.label("loop");
    b.ld(intReg(4), intReg(1), 0);
    b.st(intReg(4), intReg(2), 0);
    b.addi(intReg(1), intReg(1), 8);
    b.addi(intReg(2), intReg(2), 8);
    b.addi(intReg(3), intReg(3), -1);
    b.bne(intReg(3), intReg(0), "loop");
    b.halt();
    FunctionalCore core(b.build());
    core.run();
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(core.memory().read(0x20000 + 8 * i, 8),
                  static_cast<std::uint64_t>(10 * (i + 1)));
    }
}

TEST(FunctionalCore, CallAndReturn)
{
    Program p = assemble(R"(
        addi r1, r0, 5
        jal r31, double
        addi r2, r1, 0
        jal r31, double
        halt
    double:
        add r1, r1, r1
        jr r31
    )");
    FunctionalCore core(p);
    core.run();
    EXPECT_EQ(core.reg(intReg(2)), 10u);
    EXPECT_EQ(core.reg(intReg(1)), 20u);
}

TEST(FunctionalCore, StepCountingAndHalt)
{
    Program p = assemble("nop\nnop\nhalt\n");
    FunctionalCore core(p);
    EXPECT_TRUE(core.step());
    EXPECT_EQ(core.instCount(), 1u);
    EXPECT_TRUE(core.step());
    EXPECT_FALSE(core.step());  // executes HALT
    EXPECT_TRUE(core.halted());
    EXPECT_EQ(core.instCount(), 3u);
    EXPECT_FALSE(core.step());  // stays halted
    EXPECT_EQ(core.instCount(), 3u);
}

TEST(FunctionalCore, RunWithInstructionBudget)
{
    Program p = assemble(R"(
        addi r1, r0, 100
    loop:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    )");
    FunctionalCore core(p);
    std::uint64_t executed = core.run(10);
    EXPECT_EQ(executed, 10u);
    EXPECT_FALSE(core.halted());
    core.run();
    EXPECT_TRUE(core.halted());
}

TEST(FunctionalCore, RunningOffProgramPanics)
{
    Program p = assemble("nop\n");  // no halt
    FunctionalCore core(p);
    EXPECT_THROW(core.run(), PanicError);
}

TEST(FunctionalCore, FpAccumulation)
{
    AsmBuilder b;
    b.doubles(0x30000, {0.5, 1.5, 2.5, 3.5});
    b.la(intReg(1), 0x30000);
    b.addi(intReg(2), intReg(0), 4);
    b.fsub(fpReg(1), fpReg(1), fpReg(1));
    b.label("loop");
    b.fld(fpReg(2), intReg(1), 0);
    b.fadd(fpReg(1), fpReg(1), fpReg(2));
    b.addi(intReg(1), intReg(1), 8);
    b.addi(intReg(2), intReg(2), -1);
    b.bne(intReg(2), intReg(0), "loop");
    b.halt();
    FunctionalCore core(b.build());
    core.run();
    EXPECT_DOUBLE_EQ(core.fregAsDouble(1), 8.0);
}

TEST(FunctionalCore, DeterministicAcrossRuns)
{
    Program p = assemble(R"(
        addi r1, r0, 123
        addi r2, r0, 7
        mul r3, r1, r2
        div r4, r3, r2
        halt
    )");
    FunctionalCore a(p), b(p);
    a.run();
    b.run();
    for (RegIndex r = 0; r < kNumArchRegs; ++r)
        EXPECT_EQ(a.reg(r), b.reg(r));
    EXPECT_EQ(a.reg(intReg(4)), 123u);
}
