/**
 * @file
 * Parallel design-space sweep driver.  The evaluation reproduces the
 * paper's figures by running 100+ independent simulator configurations;
 * SweepRunner executes a batch of SimConfigs on a pool of worker
 * threads while preserving the input ordering of the results, so
 * `jobs=1` and `jobs=N` emit bit-identical tables.
 *
 * Safety model: every runSim() call owns its Program, OooCore and
 * DynInstPool outright, and the simulator keeps no global mutable
 * state, so configurations are embarrassingly parallel.  The only
 * cross-thread traffic is the work-queue index and the result slots,
 * which are disjoint per job.
 */

#ifndef SCIQ_SIM_SWEEP_HH
#define SCIQ_SIM_SWEEP_HH

#include <cstddef>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace sciq {

class SweepRunner
{
  public:
    /** Called after each finished run (always on the calling thread
     *  for jobs<=1, under a lock otherwise): done count, total, and
     *  the just-finished result. */
    using Progress =
        std::function<void(std::size_t, std::size_t, const RunResult &)>;

    /** @param jobs worker threads; 0 = std::thread::hardware_concurrency. */
    explicit SweepRunner(unsigned jobs = 0);

    /**
     * Run every configuration and return results in input order.
     * Worker exceptions are rethrown (lowest job index first) after
     * all threads have joined.
     */
    std::vector<RunResult> run(const std::vector<SimConfig> &configs,
                               const Progress &progress = nullptr) const;

    unsigned jobs() const { return jobs_; }

  private:
    unsigned jobs_;
};

/**
 * Emit results as a machine-readable JSON array (one object per run,
 * every RunResult field) for trajectory tracking and plotting.
 */
void writeResultsJson(std::ostream &os,
                      const std::vector<RunResult> &results);

/** writeResultsJson to a file path; returns false on I/O failure. */
bool writeResultsJson(const std::string &path,
                      const std::vector<RunResult> &results);

} // namespace sciq

#endif // SCIQ_SIM_SWEEP_HH
