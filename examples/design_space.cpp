/**
 * @file
 * Explores the segmented IQ's design space the way an architect using
 * this library would: sweep the chain-wire budget and the segment
 * geometry for one workload and print the resulting IPC surface, plus
 * the chain-usage statistics that explain it (paper sections 6.2/7).
 *
 * Usage: design_space [workload=swim] [iters=N]
 */

#include <cstdio>
#include <vector>

#include "common/config.hh"
#include "sim/simulator.hh"

using namespace sciq;

int
main(int argc, char **argv)
{
    ConfigMap args = ConfigMap::fromArgs(argc, argv);
    const std::string wl = args.getString("workload", "equake");
    const auto iters =
        static_cast<std::uint64_t>(args.getInt("iters", 3000));

    std::printf("Segmented-IQ design space on '%s'\n\n", wl.c_str());

    // --- 1. Chain-wire budget at 512 entries -------------------------
    std::printf("Chain budget sweep (512 entries, 16x32 segments, "
                "HMP+LRP):\n");
    std::printf("  %8s %8s %12s %12s %12s\n", "chains", "ipc",
                "avg in use", "peak", "stall-free?");
    for (int chains : {16, 32, 64, 128, 256, -1}) {
        SimConfig cfg = makeSegmentedConfig(512, chains, true, true, wl);
        cfg.wl.iterations = iters;
        cfg.validate = false;
        RunResult r = runSim(cfg);
        std::printf("  %8s %8.3f %12.1f %12.0f %12s\n",
                    chains < 0 ? "inf" : std::to_string(chains).c_str(),
                    r.ipc, r.avgChains, r.peakChains,
                    chains < 0 || r.peakChains < chains ? "yes" : "no");
    }

    // --- 2. Segment geometry at fixed capacity ------------------------
    std::printf("\nSegment geometry sweep (512 entries, 128 chains):\n");
    std::printf("  %14s %8s %14s\n", "geometry", "ipc",
                "seg0 ready avg");
    for (unsigned seg_size : {8, 16, 32, 64, 128, 256}) {
        SimConfig cfg = makeSegmentedConfig(512, 128, true, true, wl);
        cfg.core.iq.segmentSize = seg_size;
        cfg.wl.iterations = iters;
        cfg.validate = false;
        RunResult r = runSim(cfg);
        std::printf("  %6ux%-7u %8.3f %14.1f\n", 512 / seg_size,
                    seg_size, r.ipc, r.seg0ReadyAvg);
    }

    std::printf("\nNotes: wakeup/select complexity scales with the "
                "segment size, so the left column is\nroughly 'cycle "
                "time' and the middle 'IPC' - the paper argues 32-entry "
                "segments hit the sweet\nspot. Peak chain usage above "
                "the wire budget means dispatch stalled on chains.\n");
    return 0;
}
