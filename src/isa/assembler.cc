#include "assembler.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "isa/asm_builder.hh"
#include "isa/codec.hh"

namespace sciq {

namespace {

struct Token
{
    std::string text;
};

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> toks;
    std::string cur;
    for (char c : line) {
        if (c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            if (!cur.empty()) {
                toks.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        toks.push_back(cur);
    return toks;
}

bool
parseReg(const std::string &tok, RegIndex &out)
{
    if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'f'))
        return false;
    char *end = nullptr;
    long n = std::strtol(tok.c_str() + 1, &end, 10);
    if (*end != '\0' || n < 0 || n > 31)
        return false;
    out = tok[0] == 'r' ? intReg(static_cast<unsigned>(n))
                        : fpReg(static_cast<unsigned>(n));
    return true;
}

bool
parseInt(const std::string &tok, std::int64_t &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    out = std::strtoll(tok.c_str(), &end, 0);
    return *end == '\0' && end != tok.c_str();
}

bool
parseDouble(const std::string &tok, double &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(tok.c_str(), &end);
    return *end == '\0' && end != tok.c_str();
}

/** Parse "off(base)" memory operands. */
bool
parseMemOperand(const std::string &tok, std::int64_t &off, RegIndex &base)
{
    auto lp = tok.find('(');
    auto rp = tok.find(')');
    if (lp == std::string::npos || rp != tok.size() - 1 || rp <= lp + 1)
        return false;
    std::string off_str = tok.substr(0, lp);
    std::string base_str = tok.substr(lp + 1, rp - lp - 1);
    if (off_str.empty())
        off = 0;
    else if (!parseInt(off_str, off))
        return false;
    return parseReg(base_str, base);
}

const std::map<std::string, Opcode> &
mnemonicMap()
{
    static std::map<std::string, Opcode> m = [] {
        std::map<std::string, Opcode> t;
        for (unsigned i = 0; i < kNumOpcodes; ++i) {
            auto op = static_cast<Opcode>(i);
            t[std::string(opInfo(op).mnemonic)] = op;
        }
        return t;
    }();
    return m;
}

} // namespace

Program
assemble(const std::string &source, const std::string &name)
{
    std::istringstream in(source);
    std::string line;
    unsigned line_no = 0;

    // First non-directive pass note: .base must precede code, so we
    // buffer parsed lines and construct the builder lazily.
    Addr base = Program::kDefaultBase;
    bool saw_code = false;

    struct PendingData
    {
        bool is_double;
        Addr addr;
        std::vector<double> dvals;
        std::vector<std::uint64_t> wvals;
    };

    struct ParsedInst
    {
        unsigned line;
        Instruction inst;
        std::string label_target;  // for branch fixup ("" = none)
        bool is_label = false;
        std::string label_name;
    };

    std::vector<ParsedInst> items;
    std::vector<PendingData> datas;

    while (std::getline(in, line)) {
        ++line_no;
        auto toks = tokenize(line);
        if (toks.empty())
            continue;

        // Label definitions (possibly followed by an instruction).
        while (!toks.empty() && toks[0].back() == ':') {
            ParsedInst pl;
            pl.line = line_no;
            pl.is_label = true;
            pl.label_name = toks[0].substr(0, toks[0].size() - 1);
            if (pl.label_name.empty())
                throw AsmError(line_no, "empty label");
            items.push_back(pl);
            toks.erase(toks.begin());
        }
        if (toks.empty())
            continue;

        const std::string &mn = toks[0];

        if (mn == ".base") {
            if (saw_code)
                throw AsmError(line_no, ".base after code");
            std::int64_t v;
            if (toks.size() != 2 || !parseInt(toks[1], v))
                throw AsmError(line_no, "malformed .base");
            base = static_cast<Addr>(v);
            continue;
        }
        if (mn == ".doubles" || mn == ".words") {
            std::int64_t addr_v;
            if (toks.size() < 3 || !parseInt(toks[1], addr_v))
                throw AsmError(line_no, "malformed data directive");
            PendingData pd;
            pd.is_double = (mn == ".doubles");
            pd.addr = static_cast<Addr>(addr_v);
            for (std::size_t i = 2; i < toks.size(); ++i) {
                if (pd.is_double) {
                    double d;
                    if (!parseDouble(toks[i], d))
                        throw AsmError(line_no, "bad double '" + toks[i] +
                                                    "'");
                    pd.dvals.push_back(d);
                } else {
                    std::int64_t w;
                    if (!parseInt(toks[i], w))
                        throw AsmError(line_no, "bad word '" + toks[i] +
                                                    "'");
                    pd.wvals.push_back(static_cast<std::uint64_t>(w));
                }
            }
            datas.push_back(std::move(pd));
            continue;
        }

        auto it = mnemonicMap().find(mn);
        if (it == mnemonicMap().end())
            throw AsmError(line_no, "unknown mnemonic '" + mn + "'");

        saw_code = true;
        ParsedInst pi;
        pi.line = line_no;
        pi.inst.op = it->second;
        const Format fmt = opInfo(it->second).format;
        const auto &t = toks;
        auto need = [&](std::size_t n) {
            if (t.size() != n + 1)
                throw AsmError(line_no, "expected " + std::to_string(n) +
                                            " operands for '" + mn + "'");
        };
        auto reg = [&](std::size_t i) {
            RegIndex r;
            if (!parseReg(t[i], r))
                throw AsmError(line_no, "bad register '" + t[i] + "'");
            return r;
        };
        auto imm_or_label = [&](std::size_t i) {
            std::int64_t v;
            if (parseInt(t[i], v))
                pi.inst.imm = v;
            else
                pi.label_target = t[i];
        };

        switch (fmt) {
          case Format::R:
            need(3);
            pi.inst.rd = reg(1);
            pi.inst.rs1 = reg(2);
            pi.inst.rs2 = reg(3);
            break;
          case Format::I:
            // Unary FP ops take two register operands.
            if (pi.inst.op == Opcode::FSQRT || pi.inst.op == Opcode::FNEG ||
                pi.inst.op == Opcode::FABS || pi.inst.op == Opcode::FMOV ||
                pi.inst.op == Opcode::FCVTIF ||
                pi.inst.op == Opcode::FCVTFI) {
                need(2);
                pi.inst.rd = reg(1);
                pi.inst.rs1 = reg(2);
            } else {
                need(3);
                pi.inst.rd = reg(1);
                pi.inst.rs1 = reg(2);
                std::int64_t v;
                if (!parseInt(t[3], v))
                    throw AsmError(line_no, "bad immediate '" + t[3] + "'");
                pi.inst.imm = v;
            }
            break;
          case Format::M: {
            need(2);
            RegIndex data_reg = reg(1);
            std::int64_t off;
            RegIndex base_reg;
            if (!parseMemOperand(t[2], off, base_reg))
                throw AsmError(line_no, "bad memory operand '" + t[2] + "'");
            if (opInfo(pi.inst.op).opClass == OpClass::MemWrite)
                pi.inst.rs2 = data_reg;
            else
                pi.inst.rd = data_reg;
            pi.inst.rs1 = base_reg;
            pi.inst.imm = off;
            break;
          }
          case Format::B:
            need(3);
            pi.inst.rs1 = reg(1);
            pi.inst.rs2 = reg(2);
            imm_or_label(3);
            break;
          case Format::J:
            if (pi.inst.op == Opcode::J) {
                need(1);
                imm_or_label(1);
                pi.inst.rd = kInvalidReg;
            } else {  // JAL, LUI
                need(2);
                pi.inst.rd = reg(1);
                if (pi.inst.op == Opcode::JAL) {
                    imm_or_label(2);
                } else {
                    std::int64_t v;
                    if (!parseInt(t[2], v))
                        throw AsmError(line_no,
                                       "bad immediate '" + t[2] + "'");
                    pi.inst.imm = v;
                }
            }
            break;
          case Format::JR:
            if (pi.inst.op == Opcode::JR) {
                need(1);
                pi.inst.rs1 = reg(1);
                pi.inst.rd = kInvalidReg;
            } else {
                need(2);
                pi.inst.rd = reg(1);
                pi.inst.rs1 = reg(2);
            }
            break;
          case Format::N:
            need(0);
            break;
        }
        items.push_back(std::move(pi));
    }

    // Resolve labels to instruction indices.
    std::map<std::string, std::size_t> labels;
    std::size_t idx = 0;
    for (const auto &item : items) {
        if (item.is_label) {
            if (!labels.emplace(item.label_name, idx).second)
                throw AsmError(item.line,
                               "duplicate label '" + item.label_name + "'");
        } else {
            ++idx;
        }
    }

    Program prog(base);
    prog.name = name;
    idx = 0;
    for (const auto &item : items) {
        if (item.is_label)
            continue;
        Instruction inst = item.inst;
        if (!item.label_target.empty()) {
            auto it = labels.find(item.label_target);
            if (it == labels.end())
                throw AsmError(item.line, "undefined label '" +
                                              item.label_target + "'");
            inst.imm = static_cast<std::int64_t>(it->second) -
                       static_cast<std::int64_t>(idx);
        }
        if (!encodable(inst))
            throw AsmError(item.line, "operand out of encodable range");
        prog.append(inst);
        ++idx;
    }

    for (const auto &pd : datas) {
        if (pd.is_double)
            prog.addDoubles(pd.addr, pd.dvals);
        else
            prog.addWords(pd.addr, pd.wvals);
    }
    return prog;
}

} // namespace sciq
