file(REMOVE_RECURSE
  "CMakeFiles/text_predictor_stats.dir/text_predictor_stats.cc.o"
  "CMakeFiles/text_predictor_stats.dir/text_predictor_stats.cc.o.d"
  "text_predictor_stats"
  "text_predictor_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_predictor_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
