/**
 * @file
 * mgrid-like kernel: multigrid relaxation with window reuse.
 *
 * Each 8 KB window of the grid is swept three times (the repeated
 * smoothing passes of multigrid): the first sweep misses the L1 and
 * hits the L2, the next two hit the L1.  That mix gives mgrid the
 * paper's character - a mostly-hitting load stream (so the hit/miss
 * predictor saves many chains) combined with very high queue occupancy
 * and chain usage from the long independent FP stencil chains.
 */

#include "workload/kernel_util.hh"
#include "workload/workloads.hh"

namespace sciq {

using namespace kernel;

Program
buildMgrid(const WorkloadParams &params)
{
    const std::uint64_t n = scaled(98304, params.scale);  // 768 KB grid
    const std::uint64_t window = 1024;  // 8 KB sweep window
    const std::uint64_t inner = window / 4;
    std::uint64_t iters = params.iterations ? params.iterations : 9216;

    const Addr x_base = dataBase(0);
    const Addr y_base = dataBase(1);

    AsmBuilder b;
    b.doubles(x_base, randomDoubles(n, params.seed));
    b.doubles(0x9000, {0.25});

    const RegIndex p_x = intReg(11), p_y = intReg(12);
    const RegIndex win_x = intReg(13), win_y = intReg(14);
    const RegIndex total = intReg(15), inner_c = intReg(16);
    const RegIndex sweeps = intReg(17), tmp = intReg(18);
    const RegIndex x_limit = intReg(19);
    const RegIndex quarter = fpReg(1), acc = fpReg(2);

    b.la(win_x, x_base + 8);  // element 1: x[i-1] stays in bounds
    b.la(win_y, y_base);
    b.la(x_limit, x_base + (n - window - 8) * 8);
    b.li(total, static_cast<std::int64_t>(iters));
    b.li(tmp, 0x9000);
    b.fld(quarter, tmp, 0);
    b.fsub(acc, acc, acc);

    b.label("outer");
    b.addi(sweeps, intReg(0), 3);
    b.label("sweep");
    b.mov(p_x, win_x);
    b.mov(p_y, win_y);
    b.li(inner_c, static_cast<std::int64_t>(inner));

    b.label("loop");
    for (unsigned k = 0; k < 6; ++k)
        b.fld(fpReg(8 + k), p_x, 8 * static_cast<std::int64_t>(k) - 8);
    for (unsigned lane = 0; lane < 4; ++lane) {
        const RegIndex t = fpReg(16 + lane);
        b.fadd(t, fpReg(8 + lane), fpReg(9 + lane));
        b.fadd(t, t, fpReg(9 + lane));
        b.fadd(t, t, fpReg(10 + lane));
        b.fmul(t, t, quarter);
        b.fst(t, p_y, 8 * lane);
    }
    b.fadd(acc, acc, fpReg(16));
    b.addi(p_x, p_x, 32);
    b.addi(p_y, p_y, 32);
    b.addi(total, total, -1);
    b.beq(total, intReg(0), "done");
    b.addi(inner_c, inner_c, -1);
    b.bne(inner_c, intReg(0), "loop");

    b.addi(sweeps, sweeps, -1);
    b.bne(sweeps, intReg(0), "sweep");

    // Advance to the next window, wrapping at the end of the grid.
    b.li(tmp, static_cast<std::int64_t>(window * 8));
    b.add(win_x, win_x, tmp);
    b.add(win_y, win_y, tmp);
    b.bge(x_limit, win_x, "outer");
    b.la(win_x, x_base + 8);
    b.la(win_y, y_base);
    b.j("outer");

    b.label("done");
    epilogueFp(b, acc);
    return b.build("mgrid");
}

} // namespace sciq
