#include "sim_config.hh"

#include "sim/fault_injector.hh"

#include "common/errors.hh"
#include "common/logging.hh"

namespace sciq {

void
SimConfig::apply(const ConfigMap &cfg)
{
    if (cfg.has("iq")) {
        const std::string kind = cfg.getString("iq", "segmented");
        if (kind == "ideal")
            core.iqKind = IqKind::Ideal;
        else if (kind == "segmented")
            core.iqKind = IqKind::Segmented;
        else if (kind == "prescheduled")
            core.iqKind = IqKind::Prescheduled;
        else if (kind == "fifo")
            core.iqKind = IqKind::Fifo;
        else
            throw ConfigError("unknown iq kind '" + kind + "'");
    }
    core.iq.numEntries = static_cast<unsigned>(
        cfg.getInt("iq_size", core.iq.numEntries));
    core.iq.segmentSize = static_cast<unsigned>(
        cfg.getInt("seg_size", core.iq.segmentSize));
    core.iq.maxChains =
        static_cast<int>(cfg.getInt("chains", core.iq.maxChains));
    core.iq.useHmp = cfg.getBool("hmp", core.iq.useHmp);
    core.iq.useLrp = cfg.getBool("lrp", core.iq.useLrp);
    core.iq.enablePushdown =
        cfg.getBool("pushdown", core.iq.enablePushdown);
    core.iq.enableBypass = cfg.getBool("bypass", core.iq.enableBypass);
    core.iq.dynamicResize =
        cfg.getBool("resize", core.iq.dynamicResize);
    core.iq.resizeInterval = static_cast<unsigned>(
        cfg.getInt("resize_interval", core.iq.resizeInterval));
    core.iq.issueBufferSize = static_cast<unsigned>(
        cfg.getInt("issue_buffer", core.iq.issueBufferSize));
    core.iq.preschedLineWidth = static_cast<unsigned>(
        cfg.getInt("line_width", core.iq.preschedLineWidth));
    core.iq.numFifos =
        static_cast<unsigned>(cfg.getInt("fifos", core.iq.numFifos));
    core.iq.fifoDepth = static_cast<unsigned>(
        cfg.getInt("depth", core.iq.fifoDepth));
    core.modelWrongPath =
        cfg.getBool("wrong_path", core.modelWrongPath);

    workload = cfg.getString("workload", workload);
    wl.iterations = static_cast<std::uint64_t>(
        cfg.getCount("iters", static_cast<std::int64_t>(wl.iterations)));
    wl.seed = static_cast<std::uint64_t>(
        cfg.getInt("seed", static_cast<std::int64_t>(wl.seed)));
    wl.scale = cfg.getDouble("scale", wl.scale);
    maxCycles = static_cast<Cycle>(
        cfg.getCount("max_cycles", static_cast<std::int64_t>(maxCycles)));
    validate = cfg.getBool("validate", validate);
    audit = cfg.getBool("audit", audit);
    auditPanic = cfg.getBool("audit_panic", auditPanic);
    core.iq.auditInjectOverPromote = cfg.getBool(
        "audit_inject_overpromote", core.iq.auditInjectOverPromote);
    fastForward = static_cast<std::uint64_t>(
        cfg.getCount("ff", static_cast<std::int64_t>(fastForward)));
    bbCache = cfg.getBool("bb_cache", bbCache);
    core.iq.soaLayout = cfg.getBool("iq_soa", core.iq.soaLayout);
    ckptFile = cfg.getString("ckpt", ckptFile);
    ckptDir = cfg.getString("ckpt_dir", ckptDir);

    core.watchdogCycles = static_cast<Cycle>(cfg.getCount(
        "watchdog_cycles", static_cast<std::int64_t>(core.watchdogCycles)));
    deadlineSec = cfg.getDouble("deadline_sec", deadlineSec);

    // Fault-injection keys (DESIGN.md §13).  `fault_commit_stall` and
    // `fault_overpromote` configure faults that live inside the core;
    // the blob/disk faults build a FaultInjector on demand.
    core.faultCommitStallAt = static_cast<Cycle>(cfg.getInt(
        "fault_commit_stall",
        static_cast<std::int64_t>(core.faultCommitStallAt)));
    core.iq.auditInjectOverPromote = cfg.getBool(
        "fault_overpromote", core.iq.auditInjectOverPromote);
    if (cfg.has("fault_ckpt_corrupt") || cfg.has("fault_disk_fail")) {
        if (!faults) {
            faults = std::make_shared<FaultInjector>(static_cast<
                std::uint64_t>(cfg.getInt("fault_seed", 1)));
        }
        faults->corruptCkptReads = cfg.getInt("fault_ckpt_corrupt", 0);
        faults->failDiskWrites = cfg.getInt("fault_disk_fail", 0);
    }
}

void
SimConfig::printParameters(std::ostream &os) const
{
    CoreParams p = core;
    p.finalize();
    os << "Processor parameters (paper Table 1):\n"
       << "  front end          : " << p.fetchToDecode
       << " cycles fetch-to-decode, " << p.decodeToDispatch
       << " cycles decode-to-dispatch\n"
       << "  fetch              : up to " << p.fetchWidth
       << " insts/cycle, max " << p.maxBranchesPerFetch
       << " branches/cycle\n"
       << "  dispatch/issue/commit bandwidth: " << p.dispatchWidth
       << " insts/cycle\n"
       << "  IQ design          : " << iqKindName(p.iqKind) << ", "
       << p.iq.numEntries << " entries";
    if (p.iqKind == IqKind::Segmented) {
        os << " (" << p.iq.numEntries / p.iq.segmentSize << " segments of "
           << p.iq.segmentSize << "), chains="
           << (p.iq.maxChains < 0 ? std::string("unlimited")
                                  : std::to_string(p.iq.maxChains))
           << (p.iq.useHmp ? ", HMP" : "") << (p.iq.useLrp ? ", LRP" : "");
    }
    os << "\n  ROB                : " << p.robSize << " entries\n"
       << "  function units     : 8 each of intALU/intMUL/fpADD/fpMUL/"
          "cache port\n"
       << "  latencies          : int mul 3, div 20; fp add 2, mul 4, "
          "div 12, sqrt 24\n"
       << "  L1I/L1D            : 64 KB 2-way 64 B lines; 1 / 3 cycle; "
          "32 MSHRs\n"
       << "  L2                 : 1 MB 4-way 64 B lines, 10-cycle, "
          "64 B/cycle to L1\n"
       << "  memory             : 100-cycle latency, 8 B/cycle\n"
       << "  branch predictor   : 21264-style hybrid local/global\n";
}

SimConfig
makeIdealConfig(unsigned iq_size, const std::string &workload)
{
    SimConfig cfg;
    cfg.core.iqKind = IqKind::Ideal;
    cfg.core.iq.numEntries = iq_size;
    cfg.workload = workload;
    return cfg;
}

SimConfig
makeSegmentedConfig(unsigned iq_size, int chains, bool hmp, bool lrp,
                    const std::string &workload)
{
    SimConfig cfg;
    cfg.core.iqKind = IqKind::Segmented;
    cfg.core.iq.numEntries = iq_size;
    cfg.core.iq.segmentSize = 32;
    cfg.core.iq.maxChains = chains;
    cfg.core.iq.useHmp = hmp;
    cfg.core.iq.useLrp = lrp;
    cfg.workload = workload;
    return cfg;
}

SimConfig
makePrescheduledConfig(unsigned total_slots, const std::string &workload)
{
    SimConfig cfg;
    cfg.core.iqKind = IqKind::Prescheduled;
    cfg.core.iq.numEntries = total_slots;
    cfg.core.iq.issueBufferSize = 32;
    cfg.core.iq.preschedLineWidth = 12;
    cfg.workload = workload;
    return cfg;
}

SimConfig
makeFifoConfig(unsigned fifos, unsigned depth, const std::string &workload)
{
    SimConfig cfg;
    cfg.core.iqKind = IqKind::Fifo;
    cfg.core.iq.numEntries = fifos * depth;
    cfg.core.iq.numFifos = fifos;
    cfg.core.iq.fifoDepth = depth;
    cfg.workload = workload;
    return cfg;
}

} // namespace sciq
