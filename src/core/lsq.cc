#include "lsq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sciq {

Lsq::Lsq(unsigned capacity, Cache &dcache_, FuPool &fu_,
         const Scoreboard &scoreboard_, Callbacks callbacks)
    : entries(capacity), dcache(dcache_), fu(fu_),
      scoreboard(scoreboard_), cb(std::move(callbacks)), statsGroup("lsq")
{
    statsGroup.addScalar("loads_issued", &loadsIssued,
                         "loads sent to the data cache");
    statsGroup.addScalar("load_forwards", &loadForwards,
                         "loads satisfied by store-to-load forwarding");
    statsGroup.addScalar("load_conflict_stalls", &loadConflictStalls,
                         "load-cycles stalled on older stores");
    statsGroup.addScalar("store_drains", &storeDrains,
                         "committed stores written to the cache");
    statsGroup.addScalar("port_stalls", &portStalls,
                         "accesses delayed by cache-port contention");
}

void
Lsq::insert(const DynInstPtr &inst)
{
    SCIQ_ASSERT(!entries.full(), "LSQ overflow");
    inst->lsqIndex = 0;  // meaningful only as "is in LSQ"
    entries.pushBack(Entry{inst, false});
}

void
Lsq::setAddrReady(const DynInstPtr &inst, Cycle cycle)
{
    inst->addrReady = true;
    // Stores whose data is already available become commit-eligible
    // immediately; others are caught by tick()'s scan.
    if (inst->isStore()) {
        RegIndex data_reg = inst->physSrc[1];
        if (scoreboard.isReady(data_reg))
            cb.onStoreReady(inst, cycle);
    }
}

int
Lsq::classifyLoad(std::size_t idx) const
{
    const DynInstPtr &load = entries[idx].inst;
    const Addr lo = load->effAddr;
    const Addr hi = lo + load->staticInst.memSize();

    // Scan older entries youngest-first so the first overlapping store
    // found is the forwarding candidate.
    for (std::size_t j = idx; j-- > 0;) {
        const DynInstPtr &st = entries[j].inst;
        if (!st->isStore())
            continue;
        if (!st->addrReady)
            return 2;  // unknown older address: conservative wait
        const Addr slo = st->effAddr;
        const Addr shi = slo + st->staticInst.memSize();
        if (slo < hi && lo < shi) {
            // Overlap: forward only on full coverage with ready data.
            const bool covers = slo <= lo && shi >= hi;
            const bool data_ready = scoreboard.isReady(st->physSrc[1]);
            return (covers && data_ready) ? 1 : 2;
        }
    }
    return 0;
}

void
Lsq::sendLoadAccess(Entry &entry, Cycle cycle)
{
    DynInstPtr inst = entry.inst;
    entry.accessSent = true;
    inst->memAccessSent = true;
    loadsIssued.inc();
    ++pendingAccesses;

    dcache.access(
        inst->effAddr, false, cycle,
        [this, inst](Cycle when, AccessOutcome outcome) {
            --pendingAccesses;
            if (inst->squashed)
                return;
            inst->loadWasL1Hit = outcome == AccessOutcome::Hit;
            inst->loadWasDelayedHit = outcome == AccessOutcome::DelayedHit;
            inst->memAccessDone = true;
            cb.onLoadComplete(inst, when);
        },
        [this, inst](Cycle when) {
            if (!inst->squashed)
                cb.onLoadMiss(inst, when);
        });
}

void
Lsq::tick(Cycle cycle)
{
    // 1. Complete matured store-to-load forwards.
    for (auto it = pendingForwards.begin(); it != pendingForwards.end();) {
        if (it->first->squashed) {
            it = pendingForwards.erase(it);
        } else if (it->second <= cycle) {
            DynInstPtr inst = it->first;
            inst->memAccessDone = true;
            cb.onLoadComplete(inst, cycle);
            it = pendingForwards.erase(it);
        } else {
            ++it;
        }
    }

    // 2. Drain committed stores to the data cache through free ports.
    while (!drainBuffer.empty() && fu.tryAcquirePort(cycle)) {
        auto [addr, size] = drainBuffer.front();
        drainBuffer.pop_front();
        (void)size;
        storeDrains.inc();
        ++pendingAccesses;
        dcache.access(addr, true, cycle,
                      [this](Cycle, AccessOutcome) { --pendingAccesses; });
    }

    // 3. Stores whose data just became ready are now commit-eligible.
    for (std::size_t i = 0; i < entries.size(); ++i) {
        Entry &e = entries[i];
        if (e.inst->isStore() && e.inst->addrReady && !e.inst->completed &&
            scoreboard.isReady(e.inst->physSrc[1])) {
            cb.onStoreReady(e.inst, cycle);
        }
    }

    // 4. Issue ready loads (oldest first; non-conflicting loads may
    //    bypass stalled ones).
    for (std::size_t i = 0; i < entries.size(); ++i) {
        Entry &e = entries[i];
        DynInstPtr &inst = e.inst;
        if (!inst->isLoad() || !inst->addrReady || e.accessSent ||
            inst->memAccessDone) {
            continue;
        }
        int cls = classifyLoad(i);
        if (cls == 2) {
            loadConflictStalls.inc();
            continue;
        }
        if (!fu.tryAcquirePort(cycle)) {
            portStalls.inc();
            break;  // all ports consumed this cycle
        }
        if (cls == 1) {
            e.accessSent = true;
            inst->memAccessSent = true;
            inst->loadForwarded = true;
            loadForwards.inc();
            pendingForwards.emplace_back(inst, cycle + 1);
        } else {
            sendLoadAccess(e, cycle);
        }
    }
}

void
Lsq::commitStore(const DynInstPtr &inst, Cycle cycle)
{
    SCIQ_ASSERT(!entries.empty() && entries.front().inst == inst,
                "committing store that is not the LSQ head");
    entries.popFront();
    inst->lsqIndex = -1;
    drainBuffer.emplace_back(inst->effAddr, inst->staticInst.memSize());
    (void)cycle;
}

void
Lsq::commitLoad(const DynInstPtr &inst)
{
    SCIQ_ASSERT(!entries.empty() && entries.front().inst == inst,
                "committing load that is not the LSQ head");
    entries.popFront();
    inst->lsqIndex = -1;
}

void
Lsq::squash(SeqNum youngest_kept)
{
    while (!entries.empty() && entries.back().inst->seq > youngest_kept)
        entries.popBack();
    pendingForwards.erase(
        std::remove_if(pendingForwards.begin(), pendingForwards.end(),
                       [youngest_kept](const auto &p) {
                           return p.first->seq > youngest_kept;
                       }),
        pendingForwards.end());
}

bool
Lsq::busy() const
{
    return pendingAccesses > 0 || !drainBuffer.empty() ||
           !pendingForwards.empty();
}

} // namespace sciq
