/** @file Unit tests for the cycle-ordered event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"
#include "common/logging.hh"

using namespace sciq;

TEST(EventQueue, FiresInCycleOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(5); });
    q.schedule(2, [&] { order.push_back(2); });
    q.schedule(9, [&] { order.push_back(9); });
    q.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{2, 5, 9}));
}

TEST(EventQueue, SameCycleFifoOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(3, [&order, i] { order.push_back(i); });
    q.runUntil(3);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, [&] { ++fired; });
    q.schedule(6, [&] { ++fired; });
    q.runUntil(5);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.curCycle(), 5u);
    q.runUntil(6);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    std::vector<Cycle> fired;
    q.schedule(1, [&] {
        fired.push_back(q.curCycle());
        q.schedule(3, [&] { fired.push_back(q.curCycle()); });
    });
    q.runUntil(10);
    EXPECT_EQ(fired, (std::vector<Cycle>{1, 3}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue q;
    q.schedule(5, [] {});
    q.runUntil(7);
    EXPECT_THROW(q.schedule(6, [] {}), PanicError);
}

TEST(EventQueue, NextEventCycle)
{
    EventQueue q;
    EXPECT_EQ(q.nextEventCycle(), kCycleNever);
    q.schedule(11, [] {});
    q.schedule(4, [] {});
    EXPECT_EQ(q.nextEventCycle(), 4u);
}

TEST(EventQueue, SameCycleCallbackRunsThisRound)
{
    EventQueue q;
    int fired = 0;
    q.schedule(2, [&] {
        q.schedule(2, [&] { ++fired; });
    });
    q.runUntil(2);
    EXPECT_EQ(fired, 1);
}
