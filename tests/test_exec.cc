/** @file Architectural semantics tests for every SRV operation. */

#include <gtest/gtest.h>

#include <bit>
#include <limits>

#include "isa/exec.hh"
#include "isa/sparse_memory.hh"

using namespace sciq;

namespace {

/** Simple ExecContext over arrays for semantics testing. */
class TestContext : public ExecContext
{
  public:
    std::uint64_t readReg(RegIndex r) override { return regs[r]; }
    void writeReg(RegIndex r, std::uint64_t v) override { regs[r] = v; }
    std::uint64_t readMem(Addr a, unsigned s) override
    {
        return mem.read(a, s);
    }
    void writeMem(Addr a, unsigned s, std::uint64_t v) override
    {
        mem.write(a, s, v);
    }

    std::uint64_t regs[kNumArchRegs] = {};
    SparseMemory mem;
};

struct AluCase
{
    Opcode op;
    std::uint64_t a, b;
    std::uint64_t expected;
};

class AluSemantics : public ::testing::TestWithParam<AluCase>
{
  protected:
    TestContext xc;
};

constexpr std::uint64_t kMinI64 = 0x8000000000000000ULL;

} // namespace

TEST_P(AluSemantics, RegisterRegister)
{
    const AluCase &c = GetParam();
    xc.regs[1] = c.a;
    xc.regs[2] = c.b;
    Instruction i;
    i.op = c.op;
    i.rd = intReg(3);
    i.rs1 = intReg(1);
    i.rs2 = intReg(2);
    execute(i, 0x1000, xc);
    EXPECT_EQ(xc.regs[3], c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    IntOps, AluSemantics,
    ::testing::Values(
        AluCase{Opcode::ADD, 5, 7, 12},
        AluCase{Opcode::ADD, ~0ULL, 1, 0},  // wraparound
        AluCase{Opcode::SUB, 5, 7, static_cast<std::uint64_t>(-2)},
        AluCase{Opcode::AND, 0xF0F0, 0xFF00, 0xF000},
        AluCase{Opcode::OR, 0xF0F0, 0x0F0F, 0xFFFF},
        AluCase{Opcode::XOR, 0xFFFF, 0x0F0F, 0xF0F0},
        AluCase{Opcode::SLL, 1, 63, 1ULL << 63},
        AluCase{Opcode::SLL, 1, 64, 1},  // shift amount masked to 6 bits
        AluCase{Opcode::SRL, kMinI64, 63, 1},
        AluCase{Opcode::SRA, kMinI64, 63, ~0ULL},
        AluCase{Opcode::SLT, static_cast<std::uint64_t>(-1), 1, 1},
        AluCase{Opcode::SLT, 1, static_cast<std::uint64_t>(-1), 0},
        AluCase{Opcode::SLTU, static_cast<std::uint64_t>(-1), 1, 0},
        AluCase{Opcode::MUL, 7, 6, 42},
        AluCase{Opcode::MULH, kMinI64, 2,
                static_cast<std::uint64_t>(-1)},
        AluCase{Opcode::DIV, static_cast<std::uint64_t>(-20), 3,
                static_cast<std::uint64_t>(-6)},
        AluCase{Opcode::DIV, 20, 0, ~0ULL},        // div-by-zero
        AluCase{Opcode::DIV, kMinI64, static_cast<std::uint64_t>(-1),
                kMinI64},                          // overflow
        AluCase{Opcode::REM, static_cast<std::uint64_t>(-20), 3,
                static_cast<std::uint64_t>(-2)},
        AluCase{Opcode::REM, 20, 0, 20},           // rem-by-zero
        AluCase{Opcode::REM, kMinI64, static_cast<std::uint64_t>(-1),
                0}));

TEST(ExecSemantics, Immediates)
{
    TestContext xc;
    xc.regs[1] = 100;
    Instruction i;
    i.rd = intReg(2);
    i.rs1 = intReg(1);

    i.op = Opcode::ADDI;
    i.imm = -30;
    execute(i, 0, xc);
    EXPECT_EQ(xc.regs[2], 70u);

    i.op = Opcode::SLTI;
    i.imm = 101;
    execute(i, 0, xc);
    EXPECT_EQ(xc.regs[2], 1u);

    i.op = Opcode::SLLI;
    i.imm = 4;
    execute(i, 0, xc);
    EXPECT_EQ(xc.regs[2], 1600u);

    xc.regs[1] = static_cast<std::uint64_t>(-16);
    i.op = Opcode::SRAI;
    i.imm = 2;
    execute(i, 0, xc);
    EXPECT_EQ(xc.regs[2], static_cast<std::uint64_t>(-4));

    i.op = Opcode::LUI;
    i.imm = 3;
    execute(i, 0, xc);
    EXPECT_EQ(xc.regs[2], 3ULL << 14);
}

TEST(ExecSemantics, ZeroRegisterIgnored)
{
    TestContext xc;
    xc.regs[0] = 0;
    Instruction i;
    i.op = Opcode::ADDI;
    i.rd = intReg(0);
    i.rs1 = intReg(0);
    i.imm = 55;
    execute(i, 0, xc);
    EXPECT_EQ(xc.regs[0], 0u);  // write dropped
}

TEST(ExecSemantics, FloatingPoint)
{
    TestContext xc;
    auto set = [&](unsigned f, double v) {
        xc.regs[fpReg(f)] = std::bit_cast<std::uint64_t>(v);
    };
    auto get = [&](unsigned f) {
        return std::bit_cast<double>(xc.regs[fpReg(f)]);
    };
    set(1, 3.0);
    set(2, 4.0);
    Instruction i;
    i.rd = fpReg(3);
    i.rs1 = fpReg(1);
    i.rs2 = fpReg(2);

    i.op = Opcode::FADD;
    execute(i, 0, xc);
    EXPECT_DOUBLE_EQ(get(3), 7.0);
    i.op = Opcode::FSUB;
    execute(i, 0, xc);
    EXPECT_DOUBLE_EQ(get(3), -1.0);
    i.op = Opcode::FMUL;
    execute(i, 0, xc);
    EXPECT_DOUBLE_EQ(get(3), 12.0);
    i.op = Opcode::FDIV;
    execute(i, 0, xc);
    EXPECT_DOUBLE_EQ(get(3), 0.75);
    i.op = Opcode::FMIN;
    execute(i, 0, xc);
    EXPECT_DOUBLE_EQ(get(3), 3.0);
    i.op = Opcode::FMAX;
    execute(i, 0, xc);
    EXPECT_DOUBLE_EQ(get(3), 4.0);

    set(4, 16.0);
    i.op = Opcode::FSQRT;
    i.rs1 = fpReg(4);
    execute(i, 0, xc);
    EXPECT_DOUBLE_EQ(get(3), 4.0);

    set(5, -2.5);
    i.rs1 = fpReg(5);
    i.op = Opcode::FNEG;
    execute(i, 0, xc);
    EXPECT_DOUBLE_EQ(get(3), 2.5);
    i.op = Opcode::FABS;
    execute(i, 0, xc);
    EXPECT_DOUBLE_EQ(get(3), 2.5);
}

TEST(ExecSemantics, FpCompareWritesIntRegister)
{
    TestContext xc;
    xc.regs[fpReg(1)] = std::bit_cast<std::uint64_t>(1.0);
    xc.regs[fpReg(2)] = std::bit_cast<std::uint64_t>(2.0);
    Instruction i;
    i.rd = intReg(5);
    i.rs1 = fpReg(1);
    i.rs2 = fpReg(2);
    i.op = Opcode::FCMPLT;
    execute(i, 0, xc);
    EXPECT_EQ(xc.regs[5], 1u);
    i.op = Opcode::FCMPEQ;
    execute(i, 0, xc);
    EXPECT_EQ(xc.regs[5], 0u);
    i.op = Opcode::FCMPLE;
    execute(i, 0, xc);
    EXPECT_EQ(xc.regs[5], 1u);
}

TEST(ExecSemantics, Conversions)
{
    TestContext xc;
    Instruction i;

    xc.regs[1] = static_cast<std::uint64_t>(-7);
    i.op = Opcode::FCVTIF;
    i.rd = fpReg(1);
    i.rs1 = intReg(1);
    execute(i, 0, xc);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(xc.regs[fpReg(1)]), -7.0);

    xc.regs[fpReg(2)] = std::bit_cast<std::uint64_t>(42.9);
    i.op = Opcode::FCVTFI;
    i.rd = intReg(2);
    i.rs1 = fpReg(2);
    execute(i, 0, xc);
    EXPECT_EQ(xc.regs[2], 42u);  // truncating

    // NaN converts to 0 (defined behaviour).
    xc.regs[fpReg(2)] =
        std::bit_cast<std::uint64_t>(std::numeric_limits<double>::quiet_NaN());
    execute(i, 0, xc);
    EXPECT_EQ(xc.regs[2], 0u);

    // Saturating conversion of huge magnitudes.
    xc.regs[fpReg(2)] = std::bit_cast<std::uint64_t>(1e300);
    execute(i, 0, xc);
    EXPECT_EQ(xc.regs[2],
              static_cast<std::uint64_t>(
                  std::numeric_limits<std::int64_t>::max()));
}

TEST(ExecSemantics, LoadsAndStores)
{
    TestContext xc;
    xc.regs[1] = 0x1000;
    xc.mem.write(0x1008, 8, 0xCAFEBABE12345678ULL);

    Instruction ld;
    ld.op = Opcode::LD;
    ld.rd = intReg(2);
    ld.rs1 = intReg(1);
    ld.imm = 8;
    ExecResult r = execute(ld, 0, xc);
    EXPECT_EQ(xc.regs[2], 0xCAFEBABE12345678ULL);
    EXPECT_EQ(r.effAddr, 0x1008u);
    EXPECT_EQ(r.memValue, 0xCAFEBABE12345678ULL);

    // LW sign-extends.
    xc.mem.write(0x1010, 4, 0x80000000u);
    Instruction lw;
    lw.op = Opcode::LW;
    lw.rd = intReg(3);
    lw.rs1 = intReg(1);
    lw.imm = 0x10;
    execute(lw, 0, xc);
    EXPECT_EQ(xc.regs[3], 0xFFFFFFFF80000000ULL);

    Instruction st;
    st.op = Opcode::ST;
    st.rs1 = intReg(1);
    st.rs2 = intReg(2);
    st.imm = 0x20;
    ExecResult sr = execute(st, 0, xc);
    EXPECT_EQ(xc.mem.read(0x1020, 8), 0xCAFEBABE12345678ULL);
    EXPECT_EQ(sr.effAddr, 0x1020u);

    Instruction sw;
    sw.op = Opcode::SW;
    sw.rs1 = intReg(1);
    sw.rs2 = intReg(2);
    sw.imm = 0x30;
    execute(sw, 0, xc);
    EXPECT_EQ(xc.mem.read(0x1030, 8), 0x12345678u);  // only low 4 bytes
}

TEST(ExecSemantics, Branches)
{
    TestContext xc;
    xc.regs[1] = 5;
    xc.regs[2] = 5;
    Instruction b;
    b.op = Opcode::BEQ;
    b.rs1 = intReg(1);
    b.rs2 = intReg(2);
    b.imm = 10;
    ExecResult r = execute(b, 0x1000, xc);
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.nextPc, 0x1000u + 40u);

    b.op = Opcode::BNE;
    r = execute(b, 0x1000, xc);
    EXPECT_FALSE(r.taken);
    EXPECT_EQ(r.nextPc, 0x1004u);

    // Negative offsets go backwards.
    b.op = Opcode::BGE;
    b.imm = -4;
    r = execute(b, 0x1000, xc);
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.nextPc, 0x1000u - 16u);

    // Unsigned comparison differs from signed for negative values.
    xc.regs[1] = static_cast<std::uint64_t>(-1);
    xc.regs[2] = 1;
    b.op = Opcode::BLT;
    b.imm = 4;
    EXPECT_TRUE(execute(b, 0, xc).taken);
    b.op = Opcode::BLTU;
    EXPECT_FALSE(execute(b, 0, xc).taken);
}

TEST(ExecSemantics, JumpsAndLinks)
{
    TestContext xc;
    Instruction j;
    j.op = Opcode::J;
    j.imm = 5;
    ExecResult r = execute(j, 0x2000, xc);
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.nextPc, 0x2014u);

    Instruction jal;
    jal.op = Opcode::JAL;
    jal.rd = intReg(31);
    jal.imm = -2;
    r = execute(jal, 0x2000, xc);
    EXPECT_EQ(r.nextPc, 0x1ff8u);
    EXPECT_EQ(xc.regs[31], 0x2004u);

    Instruction jr;
    jr.op = Opcode::JR;
    jr.rs1 = intReg(31);
    r = execute(jr, 0x3000, xc);
    EXPECT_EQ(r.nextPc, 0x2004u);

    // JALR with rs1 == rd: target uses the old value.
    xc.regs[7] = 0x4000;
    Instruction jalr;
    jalr.op = Opcode::JALR;
    jalr.rd = intReg(7);
    jalr.rs1 = intReg(7);
    r = execute(jalr, 0x3000, xc);
    EXPECT_EQ(r.nextPc, 0x4000u);
    EXPECT_EQ(xc.regs[7], 0x3004u);
}

TEST(ExecSemantics, HaltAndNop)
{
    TestContext xc;
    Instruction n;
    n.op = Opcode::NOP;
    ExecResult r = execute(n, 0x100, xc);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.nextPc, 0x104u);

    Instruction h;
    h.op = Opcode::HALT;
    r = execute(h, 0x100, xc);
    EXPECT_TRUE(r.halted);
}
