/**
 * @file
 * Minimal key=value configuration store used by examples and benches to
 * override simulator parameters from the command line.
 */

#ifndef SCIQ_COMMON_CONFIG_HH
#define SCIQ_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sciq {

/** Parsed key=value options with typed accessors and defaults. */
class ConfigMap
{
  public:
    ConfigMap() = default;

    /** Parse argv-style "key=value" tokens; others are positional. */
    static ConfigMap fromArgs(int argc, const char *const *argv);

    /** Parse one "key=value" string; returns false if malformed. */
    bool parseLine(const std::string &line);

    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;

    /**
     * Like getInt but accepting a decimal k/m/g suffix (case
     * insensitive, powers of ten: k=1e3, m=1e6, g=1e9), so counts can
     * be written `ff=300m` or `max_cycles=2g`.  The base may be
     * fractional when suffixed (`iters=1.5m` = 1'500'000) but the
     * scaled value must be a non-negative integer that fits in
     * int64_t; anything else is fatal.
     */
    std::int64_t getCount(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    const std::vector<std::string> &positional() const { return args; }
    const std::map<std::string, std::string> &entries() const
    {
        return values;
    }

    /**
     * Check every present key against a list of known option names.
     * Returns "" when all keys are known; otherwise a human-readable
     * complaint for the first unknown key, with a "did you mean"
     * suggestion when a known key is close enough (editDistance).
     */
    std::string unknownKeyMessage(
        const std::vector<std::string> &known) const;

  private:
    std::map<std::string, std::string> values;
    std::vector<std::string> args;
};

/** Levenshtein edit distance between two option names. */
std::size_t editDistance(const std::string &a, const std::string &b);

/**
 * The known key closest to `key` in edit distance, or "" when nothing
 * is plausibly a typo (distance > max(2, |key|/3)).
 */
std::string closestKey(const std::string &key,
                       const std::vector<std::string> &known);

} // namespace sciq

#endif // SCIQ_COMMON_CONFIG_HH
