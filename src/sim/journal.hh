/**
 * @file
 * Append-only JSONL result journal for resumable sweeps (DESIGN.md §13).
 *
 * One line per finished job:
 *
 *   {"index": 7, "key": "workload=swim iters=2000 ...", "result": {...}}
 *
 * Lines are written atomically with respect to each other (one mutex,
 * one flush per line), so a sweep killed at any instant leaves at most
 * one truncated final line, which the tolerant loader skips.  On
 * restart, SweepRunner re-reads the journal, keeps every journaled-ok
 * entry whose (index, sweep key) still matches the submitted configs -
 * so editing the config list invalidates stale entries instead of
 * mispairing them - and re-runs failed, timed-out and missing jobs.
 *
 * Bit-identity contract: the result object round-trips doubles through
 * json::writeNumber's shortest round-trip formatting, so a resumed
 * sweep's writeResultsJson output is byte-identical to an uninterrupted
 * run's (tests/test_journal.cc).
 */

#ifndef SCIQ_SIM_JOURNAL_HH
#define SCIQ_SIM_JOURNAL_HH

#include <cstddef>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

namespace sciq {

/**
 * Deterministic identity of a sweep job: every config field that
 * affects architected results, as a stable `key=value` string.  Host
 * settings (jobs, checkpoint caching, audit, fault injection) are
 * deliberately excluded - they must not invalidate journal entries.
 */
std::string sweepKey(const SimConfig &config);

/** Serialize one result as a compact single-line JSON object. */
void writeResultCompactJson(std::ostream &os, const RunResult &r);

/** Rebuild a RunResult from a parsed journal `result` object. */
RunResult resultFromJson(const json::Value &obj);

/** One successfully parsed journal line. */
struct JournalEntry
{
    std::size_t index = 0;
    std::string key;
    RunResult result;
};

/**
 * Load every well-formed line of a journal file.  Malformed lines
 * (typically one truncated tail line from a killed run) are skipped;
 * a missing file yields an empty vector.  Later lines win over earlier
 * ones with the same index, so a re-run job supersedes its old entry.
 */
std::vector<JournalEntry> loadJournal(const std::string &path);

/**
 * Resume helper shared by SweepRunner and the distributed coordinator:
 * load `path` and keep every journaled-ok entry whose (index, sweep
 * key) still matches `keys`, storing it into `results` and setting
 * `have[index]`.  A later non-ok line clears `have[index]` again, so a
 * job whose re-run failed is re-run once more.  Returns the number of
 * entries reused.  `results` and `have` must be sized keys.size().
 */
std::size_t applyJournal(const std::string &path,
                         const std::vector<std::string> &keys,
                         std::vector<RunResult> &results,
                         std::vector<char> &have);

/**
 * Thread-safe appender; one fully written line per record().
 *
 * Writes go straight to an O_APPEND fd (no stdio buffer), so a record
 * that returned is at worst in the page cache, never in a user-space
 * buffer a crash would discard.  With `sync = true` every record is
 * additionally fsync'd before returning — the distributed coordinator
 * uses this so a result is durable *before* it is acked to the worker:
 * a coordinator killed at any instant either never acked (the worker
 * redelivers on reconnect) or has the row on disk (resume replays it),
 * which is what keeps a crashed-and-restarted sweep byte-identical
 * (DESIGN.md §18).
 */
class ResultJournal
{
  public:
    /** Opens `path` in append mode; throws ResourceError on failure. */
    explicit ResultJournal(const std::string &path, bool sync = false);
    ~ResultJournal();

    ResultJournal(const ResultJournal &) = delete;
    ResultJournal &operator=(const ResultJournal &) = delete;

    void record(std::size_t index, const std::string &key,
                const RunResult &result);

    const std::string &path() const { return path_; }
    bool synced() const { return sync_; }

  private:
    std::string path_;
    int fd_ = -1;
    bool sync_ = false;
    std::mutex mu_;
};

} // namespace sciq

#endif // SCIQ_SIM_JOURNAL_HH
