# Empty compiler generated dependencies file for sciq_sim.
# This may be replaced when dependencies are built.
