
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iq/fifo_iq.cc" "src/iq/CMakeFiles/sciq_iq.dir/fifo_iq.cc.o" "gcc" "src/iq/CMakeFiles/sciq_iq.dir/fifo_iq.cc.o.d"
  "/root/repo/src/iq/ideal_iq.cc" "src/iq/CMakeFiles/sciq_iq.dir/ideal_iq.cc.o" "gcc" "src/iq/CMakeFiles/sciq_iq.dir/ideal_iq.cc.o.d"
  "/root/repo/src/iq/iq_base.cc" "src/iq/CMakeFiles/sciq_iq.dir/iq_base.cc.o" "gcc" "src/iq/CMakeFiles/sciq_iq.dir/iq_base.cc.o.d"
  "/root/repo/src/iq/prescheduled_iq.cc" "src/iq/CMakeFiles/sciq_iq.dir/prescheduled_iq.cc.o" "gcc" "src/iq/CMakeFiles/sciq_iq.dir/prescheduled_iq.cc.o.d"
  "/root/repo/src/iq/segmented_iq.cc" "src/iq/CMakeFiles/sciq_iq.dir/segmented_iq.cc.o" "gcc" "src/iq/CMakeFiles/sciq_iq.dir/segmented_iq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sciq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/sciq_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/sciq_branch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
