/**
 * @file
 * Reproduces **Table 2** of the paper: average and peak dependence-
 * chain usage for a 512-entry segmented IQ with unlimited chains,
 * under the four chain-creation policies (Baseline, HMP, LRP, both).
 *
 * Expected shape: HMP cuts chains by ~1/3 (except on high-miss-rate
 * codes like swim), LRP by ~58%, combined ~67%; peaks can exceed the
 * IQ size because chains are freed only at head writeback.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sciq;
using namespace sciq::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseArgs(argc, argv, workloadNames(), {"iq_size"});

    const unsigned kIqSize = static_cast<unsigned>(
        args.raw.getInt("iq_size", 512));

    std::printf("Table 2: chain usage, %u-entry segmented IQ, unlimited "
                "chains\n\n",
                kIqSize);
    std::printf("%-9s | %9s %9s | %9s %9s | %9s %9s | %9s %9s\n", "bench",
                "base avg", "peak", "hmp avg", "peak", "lrp avg", "peak",
                "comb avg", "peak");
    hr('-', 100);

    SweepBatch batch(args);
    for (const auto &wl : args.workloads) {
        for (auto [use_hmp, use_lrp] :
             {std::pair{false, false}, std::pair{true, false},
              std::pair{false, true}, std::pair{true, true}}) {
            batch.add(
                makeSegmentedConfig(kIqSize, -1, use_hmp, use_lrp, wl));
        }
    }
    batch.run();

    double sums[8] = {};
    for (const auto &wl : args.workloads) {
        std::printf("%-9s |", wl.c_str());
        for (int col = 0; col < 4; ++col) {
            RunResult r = batch.next();
            std::printf(" %9.1f %9.0f %s", r.avgChains, r.peakChains,
                        col == 3 ? "" : "|");
            sums[col * 2] += r.avgChains;
            sums[col * 2 + 1] += r.peakChains;
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    hr('-', 100);
    std::printf("%-9s |", "average");
    const double n = static_cast<double>(args.workloads.size());
    for (int col = 0; col < 4; ++col) {
        std::printf(" %9.1f %9.0f %s", sums[col * 2] / n,
                    sums[col * 2 + 1] / n, col == 3 ? "" : "|");
    }
    std::printf("\n\nPaper reference (512 entries): base avg 352 / "
                "peak 516; HMP avg 235; LRP avg 147; comb avg 117.\n");
    finishBench(args);
    return 0;
}
