#include "disassembler.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace sciq {

std::string
regName(RegIndex r)
{
    if (r == kInvalidReg)
        return "-";
    char buf[8];
    if (isFpReg(r))
        std::snprintf(buf, sizeof(buf), "f%u", r - 32);
    else
        std::snprintf(buf, sizeof(buf), "r%u", static_cast<unsigned>(r));
    return buf;
}

std::string
disassemble(const Instruction &inst)
{
    const OpInfo &info = opInfo(inst.op);
    std::ostringstream os;
    os << info.mnemonic;

    auto imm = static_cast<long long>(inst.imm);
    switch (info.format) {
      case Format::R:
        os << ' ' << regName(inst.rd) << ", " << regName(inst.rs1) << ", "
           << regName(inst.rs2);
        break;
      case Format::I:
        // Unary FP ops use I format with an unused immediate.
        if (inst.op == Opcode::FSQRT || inst.op == Opcode::FNEG ||
            inst.op == Opcode::FABS || inst.op == Opcode::FMOV ||
            inst.op == Opcode::FCVTIF || inst.op == Opcode::FCVTFI) {
            os << ' ' << regName(inst.rd) << ", " << regName(inst.rs1);
        } else {
            os << ' ' << regName(inst.rd) << ", " << regName(inst.rs1)
               << ", " << imm;
        }
        break;
      case Format::M:
        if (inst.isStore()) {
            os << ' ' << regName(inst.rs2) << ", " << imm << '('
               << regName(inst.rs1) << ')';
        } else {
            os << ' ' << regName(inst.rd) << ", " << imm << '('
               << regName(inst.rs1) << ')';
        }
        break;
      case Format::B:
        os << ' ' << regName(inst.rs1) << ", " << regName(inst.rs2) << ", "
           << imm;
        break;
      case Format::J:
        if (inst.op == Opcode::JAL)
            os << ' ' << regName(inst.rd) << ", " << imm;
        else if (inst.op == Opcode::LUI)
            os << ' ' << regName(inst.rd) << ", " << imm;
        else
            os << ' ' << imm;
        break;
      case Format::JR:
        if (inst.op == Opcode::JALR)
            os << ' ' << regName(inst.rd) << ", " << regName(inst.rs1);
        else
            os << ' ' << regName(inst.rs1);
        break;
      case Format::N:
        break;
    }
    return os.str();
}

std::string
disassemble(const Program &prog)
{
    std::ostringstream os;
    char pc_buf[24];
    for (std::size_t i = 0; i < prog.size(); ++i) {
        std::snprintf(pc_buf, sizeof(pc_buf), "%#8llx:  ",
                      static_cast<unsigned long long>(prog.pcOf(i)));
        os << pc_buf << disassemble(prog.instructions()[i]) << '\n';
    }
    return os.str();
}

} // namespace sciq
