/**
 * @file
 * The Simulator facade: builds the workload program and core from a
 * SimConfig, runs to completion, validates committed state against the
 * functional golden model, and extracts the metrics the evaluation
 * section reports.
 */

#ifndef SCIQ_SIM_SIMULATOR_HH
#define SCIQ_SIM_SIMULATOR_HH

#include <memory>
#include <ostream>
#include <string>

#include "common/errors.hh"
#include "common/stats.hh"
#include "sim/sim_config.hh"

namespace sciq {

class Auditor;
class FunctionalCore;

/**
 * How a sweep job ended (DESIGN.md §13).  A default-constructed
 * outcome means Ok so results produced outside the sweep runner
 * (direct runSim calls) stay valid.
 */
struct JobOutcome
{
    enum class Status
    {
        Ok,      ///< run completed; stats fields are meaningful
        Failed,  ///< an error was contained; see code/message
        Timeout, ///< wall-clock deadline exceeded (DeadlockError timeout)
    };

    Status status = Status::Ok;
    ErrorCode code = ErrorCode::None;
    std::string message;
    unsigned attempts = 1;  ///< 1 = succeeded/failed first try

    bool ok() const { return status == Status::Ok; }
    bool retried() const { return attempts > 1; }
};

const char *jobStatusName(JobOutcome::Status status);
JobOutcome::Status jobStatusFromName(const std::string &name);

/** Everything the benchmark harnesses report, in one POD. */
struct RunResult
{
    std::string workload;
    std::string iqKind;
    unsigned iqSize = 0;
    int chains = -1;

    std::uint64_t cycles = 0;
    std::uint64_t insts = 0;
    double ipc = 0.0;

    // Chain statistics (Table 2).
    double avgChains = 0.0;
    double peakChains = 0.0;

    // Predictor statistics (section 6.1 text).
    double hmpAccuracy = 0.0;
    double hmpCoverage = 0.0;
    double lrpMispredictRate = 0.0;
    double branchMispredictRate = 0.0;

    // Occupancy / deadlock statistics (section 6.1 / 4.5 text).
    double iqOccupancyAvg = 0.0;
    double seg0ReadyAvg = 0.0;
    double seg0OccupancyAvg = 0.0;
    double deadlockCycleFrac = 0.0;
    double twoOutstandingFrac = 0.0;
    double headsFromLoadsFrac = 0.0;

    // Memory behaviour.
    double l1dMissRate = 0.0;       ///< incl. delayed hits
    double l1dDelayedHitFrac = 0.0;

    // Dynamic-resize statistics (ablation A3).
    double segActiveAvg = 0.0;      ///< powered segments per cycle
    double segCyclesActive = 0.0;   ///< total powered segment-cycles

    /** Invariant-auditor violations (0 unless SimConfig::audit). */
    std::uint64_t auditViolations = 0;

    /**
     * The warm-up prefix was restored from a checkpoint instead of
     * being re-executed.  Informational only: restored and cold runs
     * produce bit-identical architected stats, but which sweep point
     * happens to produce a shared warm-up is scheduling-dependent, so
     * this flag is excluded from determinism comparisons.
     */
    bool ckptRestored = false;

    // Host performance of the timed core loop (every sweep doubles as
    // a perf sample).  Wall-clock, so never part of bit-identity
    // comparisons (see tests/test_sweep.cc).
    double hostSeconds = 0.0;
    double hostKcyclesPerSec = 0.0;
    double hostKinstsPerSec = 0.0;

    // Functional-warming performance and block-cache observability.
    // Non-zero only when this run executed the warm-up itself (a
    // checkpoint restore skips it), so like hostSeconds these are
    // wall-clock/scheduling-dependent and excluded from bit-identity
    // comparisons.
    double warmSeconds = 0.0;
    double warmInstsPerSec = 0.0;
    std::uint64_t bbBlocks = 0;     ///< basic blocks discovered
    std::uint64_t bbOpsCached = 0;  ///< micro-ops across those blocks
    std::uint64_t bbTraceHits = 0;  ///< block lookups served from cache
    std::uint64_t bbSuccHits = 0;   ///< successor inline-cache hits

    // Deterministic host-work counters of the segmented IQ scheduler
    // (DESIGN.md section 16.5; zero for other IQ kinds).  Exact and
    // noise-free - unlike the wall-clock numbers above they are
    // reproducible bit for bit - but they measure *host* effort, so
    // they differ between the two segmented engines (iq_soa=) and are
    // excluded from cross-engine identity comparisons.
    std::uint64_t iqSignalDeliveries = 0;  ///< chain-log entries examined
    std::uint64_t iqPlanCalls = 0;         ///< full computePlan executions
    std::uint64_t iqSegmentsScanned = 0;   ///< promotion-pass segment visits
    std::uint64_t iqLaneWordsTouched = 0;  ///< 8-byte sched words touched

    bool validated = false;
    bool haltedCleanly = false;

    /**
     * Fault containment: how the sweep job that produced this result
     * ended.  On Failed/Timeout the identity fields (workload, IQ
     * kind/size/chains) are filled from the config and every stat is
     * zero - the job appears in tables with its error, never vanishes.
     */
    JobOutcome outcome;
};

class Simulator
{
  public:
    explicit Simulator(const SimConfig &config);
    ~Simulator();

    /** Run to HALT (or the cycle cap) and collect results. */
    RunResult run();

    /**
     * Split run() for callers that drive the core loop themselves
     * (batched lockstep simulation, DESIGN.md §15): prepare() performs
     * the configured fast-forward (no-op when fastForward is 0) and
     * returns instructions skipped; collect() extracts the RunResult
     * after the caller has run the core to completion.  run() is
     * exactly prepare() + the timed loop + collect().
     */
    std::uint64_t prepare(bool &restored);
    RunResult collect(double host_seconds, std::uint64_t skipped,
                      bool restored);

    OooCore &core() { return *core_; }
    const Program &program() const { return *program_; }
    const SimConfig &simConfig() const { return config; }

    /** The attached invariant auditor, or null when audit is off. */
    Auditor *auditor() { return auditor_.get(); }

    /**
     * Warm-up observability: `warm.seconds`, `warm.insts_per_sec` and
     * the `warm.bbcache.*` counters.  Deliberately NOT a child of the
     * core's stat group — wall-clock values would break the restored
     * ≡ cold byte-identity of that tree (tests/test_checkpoint.cc).
     */
    stats::Group &warmStatGroup() { return warmStats_; }

  private:
    /**
     * Perform the configured fast-forward, through the checkpoint
     * machinery when enabled.  Returns instructions skipped; sets
     * `restored` when the state came from a checkpoint.
     */
    std::uint64_t warmUp(bool &restored);

    /** Record warming wall-clock and block-cache counters. */
    void noteWarm(double seconds, std::uint64_t insts,
                  const FunctionalCore &warm);

    SimConfig config;
    std::unique_ptr<Program> program_;
    std::unique_ptr<OooCore> core_;
    std::unique_ptr<Auditor> auditor_;

    stats::Group warmStats_{"warm"};
    stats::Group bbStats_{"bbcache"};
    stats::Scalar warmSecondsStat_;
    stats::Scalar warmIpsStat_;
    stats::Scalar bbBlocksStat_;
    stats::Scalar bbOpsStat_;
    stats::Scalar bbTraceHitsStat_;
    stats::Scalar bbSuccHitsStat_;
};

/** Convenience: configure, run, and return the result. */
RunResult runSim(const SimConfig &config);

/** Fixed-width results-table helpers shared by the benches. */
void printResultHeader(std::ostream &os);
void printResultRow(std::ostream &os, const RunResult &r);

} // namespace sciq

#endif // SCIQ_SIM_SIMULATOR_HH
