#include "cache.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace sciq {

Cache::Cache(const CacheParams &params, MemLevel &below_, EventQueue &ev)
    : params_(params), below(below_), events(ev), statsGroup(params.name)
{
    SCIQ_ASSERT(isPowerOf2(params_.lineBytes), "line size must be pow2");
    SCIQ_ASSERT(params_.sizeBytes % (params_.lineBytes * params_.assoc) == 0,
                "cache size not divisible by line*assoc");
    numSets = params_.sizeBytes / (params_.lineBytes * params_.assoc);
    SCIQ_ASSERT(isPowerOf2(numSets), "set count must be a power of two");
    lineShift = floorLog2(params_.lineBytes);
    lines.assign(numSets * params_.assoc, Line{});
    warmMemoClear();

    statsGroup.addScalar("accesses", &accesses, "CPU-side accesses");
    statsGroup.addScalar("hits", &hits, "accesses that hit");
    statsGroup.addScalar("misses", &misses, "primary misses");
    statsGroup.addScalar("delayed_hits", &delayedHits,
                         "accesses merged into an in-flight miss");
    statsGroup.addScalar("writebacks", &writebacks,
                         "dirty lines written back");
    statsGroup.addScalar("mshr_full_stalls", &mshrFullStalls,
                         "cycles a miss waited for a free MSHR");
}

Cache::Line *
Cache::lookup(Addr line_addr)
{
    std::size_t set = setIndex(line_addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines[set * params_.assoc + w];
        if (line.valid && line.tag == line_addr)
            return &line;
    }
    return nullptr;
}

bool
Cache::isResident(Addr addr) const
{
    Addr la = lineAddrOf(addr);
    std::size_t set = setIndex(la);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Line &line = lines[set * params_.assoc + w];
        if (line.valid && line.tag == la)
            return true;
    }
    return false;
}

void
Cache::warmInsert(Addr addr)
{
    const Addr la = lineAddrOf(addr);
    if (warmMemoHas(la))
        return;  // proven resident; a repeat insert is a no-op
    (void)warmTouch(la);
}

bool
Cache::warmAccess(Addr addr)
{
    const Addr la = lineAddrOf(addr);
    if (warmMemoHas(la))
        return true;  // proven resident since the last install
    return warmTouch(la);
}

bool
Cache::warmTouch(Addr la)
{
    // One pass over the set computes residency AND the would-be victim
    // (first invalid way, else the first least-recently-used way —
    // installLine's exact selection order), so a warm miss costs one
    // scan instead of lookup() + installLine()'s two.
    const std::size_t set = setIndex(la);
    Line *firstInvalid = nullptr;
    Line *lru = nullptr;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines[set * params_.assoc + w];
        if (!line.valid) {
            if (!firstInvalid)
                firstInvalid = &line;
            continue;
        }
        if (line.tag == la) {
            warmMemoAdd(la);
            return true;
        }
        if (!lru || line.lastUse < lru->lastUse)
            lru = &line;
    }

    Line *victim = firstInvalid ? firstInvalid : lru;
    if (victim->valid && victim->dirty) {
        writebacks.inc();
        below.request(victim->tag, true, 0, [](Cycle) {});
    }
    warmMemoClear();  // the eviction may remove a memoized line
    victim->valid = true;
    victim->tag = la;
    victim->dirty = false;
    victim->lastUse = 0;
    warmMemoAdd(la);
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines)
        line = Line{};
    warmMemoClear();
}

void
Cache::save(serial::Writer &w) const
{
    if (!mshrFile.empty()) {
        throw serial::Error("cache '" + params_.name +
                            "' has in-flight misses; checkpoints must be "
                            "taken while the hierarchy is quiescent");
    }
    w.u64(numSets);
    w.u32(params_.assoc);
    w.u32(params_.lineBytes);
    for (const Line &line : lines) {
        w.u64(line.tag);
        w.u8(static_cast<std::uint8_t>((line.valid ? 1 : 0) |
                                       (line.dirty ? 2 : 0)));
        w.u64(line.lastUse);
    }
    w.u64(nextFillFree);
    w.f64(accesses.value());
    w.f64(hits.value());
    w.f64(misses.value());
    w.f64(delayedHits.value());
    w.f64(writebacks.value());
    w.f64(mshrFullStalls.value());
}

void
Cache::restore(serial::Reader &r)
{
    if (!mshrFile.empty()) {
        throw serial::Error("cache '" + params_.name +
                            "' has in-flight misses; cannot restore");
    }
    const std::uint64_t sets = r.u64();
    const std::uint32_t assoc = r.u32();
    const std::uint32_t line_bytes = r.u32();
    if (sets != numSets || assoc != params_.assoc ||
        line_bytes != params_.lineBytes) {
        throw serial::Error(
            "cache '" + params_.name + "' geometry mismatch: snapshot " +
            std::to_string(sets) + "x" + std::to_string(assoc) + "x" +
            std::to_string(line_bytes) + ", configured " +
            std::to_string(numSets) + "x" + std::to_string(params_.assoc) +
            "x" + std::to_string(params_.lineBytes));
    }
    for (Line &line : lines) {
        line.tag = r.u64();
        const std::uint8_t flags = r.u8();
        line.valid = (flags & 1) != 0;
        line.dirty = (flags & 2) != 0;
        line.lastUse = r.u64();
    }
    warmMemoClear();
    nextFillFree = r.u64();
    accesses.set(r.f64());
    hits.set(r.f64());
    misses.set(r.f64());
    delayedHits.set(r.f64());
    writebacks.set(r.f64());
    mshrFullStalls.set(r.f64());
}

void
Cache::access(Addr addr, bool is_write, Cycle now, AccessDone done,
              MissNotify on_miss)
{
    accesses.inc();
    const Addr la = lineAddrOf(addr);
    const Cycle lookup_cycle = now + params_.latency;

    events.schedule(lookup_cycle, [this, la, is_write, lookup_cycle,
                                   done = std::move(done),
                                   on_miss = std::move(on_miss)]() mutable {
        if (Line *line = lookup(la)) {
            hits.inc();
            line->lastUse = lookup_cycle;
            if (is_write)
                line->dirty = true;
            done(lookup_cycle, AccessOutcome::Hit);
            return;
        }

        // The lookup has determined this is a miss; tell the IQ so it
        // can suspend the load's chain (paper section 3.4).
        if (on_miss)
            on_miss(lookup_cycle);

        const bool merged = mshrFile.count(la) > 0;
        if (merged)
            delayedHits.inc();
        else
            misses.inc();

        AccessOutcome outcome =
            merged ? AccessOutcome::DelayedHit : AccessOutcome::Miss;
        startMiss(la, is_write, lookup_cycle,
                  [done = std::move(done), outcome](Cycle when) {
                      done(when, outcome);
                  });
    });
}

void
Cache::request(Addr line_addr, bool is_write, Cycle now,
               std::function<void(Cycle)> done)
{
    const Cycle lookup_cycle = now + params_.latency;
    events.schedule(lookup_cycle, [this, line_addr, is_write, lookup_cycle,
                                   done = std::move(done)]() mutable {
        if (Line *line = lookup(line_addr)) {
            line->lastUse = lookup_cycle;
            if (is_write)
                line->dirty = true;
            // Source the line upward subject to fill bandwidth.
            Cycle start = std::max(lookup_cycle, nextFillFree);
            Cycle finish = start + params_.fillBandwidth;
            nextFillFree = finish;
            events.schedule(finish,
                            [done = std::move(done), finish]() mutable {
                                done(finish);
                            });
            return;
        }
        startMiss(line_addr, is_write, lookup_cycle,
                  [this, done = std::move(done)](Cycle when) mutable {
                      // Fill arrived here; forward upward with bandwidth.
                      Cycle start = std::max(when, nextFillFree);
                      Cycle finish = start + params_.fillBandwidth;
                      nextFillFree = finish;
                      events.schedule(
                          finish, [done = std::move(done), finish]() mutable {
                              done(finish);
                          });
                  });
    });
}

void
Cache::startMiss(Addr line_addr, bool is_write, Cycle now,
                 std::function<void(Cycle)> cb)
{
    if (auto it = mshrFile.find(line_addr); it != mshrFile.end()) {
        it->second.anyWrite |= is_write;
        it->second.lineWaiters.push_back(std::move(cb));
        return;
    }

    if (mshrFile.size() >= params_.mshrs) {
        // All MSHRs busy: retry next cycle.
        mshrFullStalls.inc();
        events.schedule(now + 1, [this, line_addr, is_write, now,
                                  cb = std::move(cb)]() mutable {
            startMiss(line_addr, is_write, now + 1, std::move(cb));
        });
        return;
    }

    Mshr &mshr = mshrFile[line_addr];
    mshr.lineAddr = line_addr;
    mshr.anyWrite = is_write;
    mshr.lineWaiters.push_back(std::move(cb));

    below.request(line_addr, false, now, [this, line_addr](Cycle when) {
        handleFill(line_addr, when);
    });
}

void
Cache::handleFill(Addr line_addr, Cycle when)
{
    auto it = mshrFile.find(line_addr);
    SCIQ_ASSERT(it != mshrFile.end(), "fill without MSHR for %#llx",
                static_cast<unsigned long long>(line_addr));

    // Move waiters out before erasing; callbacks may start new misses.
    auto waiters = std::move(it->second.lineWaiters);
    bool dirty = it->second.anyWrite;
    mshrFile.erase(it);

    installLine(line_addr, dirty, when);
    for (auto &w : waiters)
        w(when);
}

void
Cache::installLine(Addr line_addr, bool dirty, Cycle now)
{
    // The install may evict the memoized warm line; re-proven by the
    // next warmAccess/warmInsert.
    warmMemoClear();
    std::size_t set = setIndex(line_addr);
    Line *victim = nullptr;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines[set * params_.assoc + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }

    if (victim->valid && victim->dirty) {
        writebacks.inc();
        below.request(victim->tag, true, now, [](Cycle) {});
    }

    victim->valid = true;
    victim->tag = line_addr;
    victim->dirty = dirty;
    victim->lastUse = now;
}

} // namespace sciq
