/**
 * @file
 * Differential test for the incremental scheduling indices (DESIGN.md
 * section 11).  Under audit=1 the invariant auditor re-derives every
 * index from a brute-force rescan each cycle -- the chain subscriber
 * lists, the promotion-candidate counts and masks, the self-timed
 * countdown lists, the O(1) occupancy counters, the ideal queue's
 * ready list, and the writeback ring -- and counts disagreements.
 * Sweeping every workload at both queue sizes with zero disagreements
 * is the evidence that the event-driven tick schedules exactly the
 * same instructions as the per-cycle full scans it replaced.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "iq/segmented_iq.hh"
#include "sim/audit.hh"
#include "sim/simulator.hh"
#include "workload/workloads.hh"

using namespace sciq;

namespace {

using IndexParam = std::tuple<std::string, unsigned>;

class SchedIndexSweep : public ::testing::TestWithParam<IndexParam>
{
};

TEST_P(SchedIndexSweep, SegmentedIndicesMatchRescan)
{
    const auto &[workload, iq_size] = GetParam();

    SimConfig cfg = makeSegmentedConfig(iq_size, 32, true, true, workload);
    cfg.wl.iterations = 200;
    cfg.audit = true;

    Simulator sim(cfg);
    RunResult r = sim.run();

    EXPECT_TRUE(r.haltedCleanly);
    EXPECT_TRUE(r.validated);
    ASSERT_NE(sim.auditor(), nullptr);
    const Auditor &a = *sim.auditor();
    EXPECT_GT(a.cyclesAudited.value(), 0.0);
    EXPECT_EQ(a.occIndex.value(), 0.0);
    EXPECT_EQ(a.promoIndex.value(), 0.0);
    EXPECT_EQ(a.subIndex.value(), 0.0);
    EXPECT_EQ(a.countdownIndex.value(), 0.0);
    EXPECT_EQ(a.wbRingBound.value(), 0.0);
    EXPECT_EQ(r.auditViolations, 0u);

    auto *seg = dynamic_cast<SegmentedIq *>(&sim.core().iqUnit());
    ASSERT_NE(seg, nullptr);
    const double n = static_cast<double>(seg->numSegments());

    // Satellite invariants of the index design: the per-chain signal
    // log is pruned at the delivery horizon, so its peak length stays
    // proportional to the wire pipeline depth (not to run length), and
    // the promotion pass visits no more segments than a full sweep
    // would.
    stats::Group &core_stats = sim.core().statGroup();
    const double log_peak = core_stats.lookup("iq.log_peak");
    EXPECT_GT(log_peak, 0.0);
    EXPECT_LE(log_peak, 8.0 * (n + 2.0));
    const double dirty = core_stats.lookup("iq.dirty_segments");
    EXPECT_LE(dirty, a.cyclesAudited.value() * (n - 1.0));
}

std::string
indexParamName(const ::testing::TestParamInfo<IndexParam> &info)
{
    return std::get<0>(info.param) + "_" +
           std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SchedIndexSweep,
    ::testing::Combine(::testing::ValuesIn(workloadNames()),
                       ::testing::Values(64u, 256u)),
    indexParamName);

TEST(SchedIndexIdeal, ReadyListMatchesRescan)
{
    // The ideal queue's event-driven wakeup keeps a ready list instead
    // of polling the scoreboard; the auditor recomputes readiness for
    // every resident instruction each cycle.
    for (unsigned iq_size : {64u, 256u}) {
        SimConfig cfg = makeIdealConfig(iq_size, "gcc");
        cfg.wl.iterations = 200;
        cfg.audit = true;

        Simulator sim(cfg);
        RunResult r = sim.run();

        EXPECT_TRUE(r.haltedCleanly);
        ASSERT_NE(sim.auditor(), nullptr);
        EXPECT_EQ(sim.auditor()->readyIndex.value(), 0.0);
        EXPECT_EQ(r.auditViolations, 0u);
    }
}

TEST(SchedIndexStats, CountersAreWiredIntoCoreTree)
{
    SimConfig cfg = makeSegmentedConfig(64, 32, true, true, "swim");
    cfg.wl.iterations = 100;
    cfg.audit = true;

    Simulator sim(cfg);
    sim.run();

    stats::Group &core_stats = sim.core().statGroup();
    for (const char *name :
         {"audit.occ_index", "audit.promo_index", "audit.sub_index",
          "audit.countdown_index", "audit.ready_index",
          "audit.wb_ring_bound"}) {
        EXPECT_TRUE(core_stats.contains(name)) << name;
        EXPECT_EQ(core_stats.lookup(name), 0.0) << name;
    }
    EXPECT_TRUE(core_stats.contains("iq.log_peak"));
    EXPECT_TRUE(core_stats.contains("iq.dirty_segments"));
}

} // namespace
