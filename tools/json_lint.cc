/**
 * @file
 * Strict JSON linter for bench_out= result files.  Exits 0 only when
 * every argument parses under the RFC 8259 parser (which rejects bare
 * nan/inf, trailing commas, duplicate keys, unpaired surrogates, ...).
 */

#include <cstdio>

#include "common/json.hh"

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s file.json [...]\n", argv[0]);
        return 2;
    }
    int rc = 0;
    for (int i = 1; i < argc; ++i) {
        try {
            sciq::json::parseFile(argv[i]);
            std::printf("%s: ok\n", argv[i]);
        } catch (const sciq::json::ParseError &e) {
            std::fprintf(stderr, "%s: %s\n", argv[i], e.what());
            rc = 1;
        }
    }
    return rc;
}
