/** @file Tests for chain-wire allocation and generation tracking. */

#include <gtest/gtest.h>

#include "iq/chain_allocator.hh"

using namespace sciq;

TEST(ChainAllocator, BoundedAllocation)
{
    ChainAllocator a(3);
    EXPECT_TRUE(a.available());
    auto [c0, g0] = a.alloc();
    auto [c1, g1] = a.alloc();
    auto [c2, g2] = a.alloc();
    (void)g0;
    (void)g1;
    (void)g2;
    EXPECT_FALSE(a.available());
    EXPECT_EQ(a.inUse(), 3u);
    EXPECT_NE(c0, c1);
    EXPECT_NE(c1, c2);
    EXPECT_THROW(a.alloc(), PanicError);
}

TEST(ChainAllocator, FreeMakesWireAvailable)
{
    ChainAllocator a(1);
    auto [id, gen] = a.alloc();
    EXPECT_FALSE(a.available());
    a.free(id);
    EXPECT_TRUE(a.available());
    EXPECT_EQ(a.inUse(), 0u);
    auto [id2, gen2] = a.alloc();
    EXPECT_EQ(id2, id);        // the wire is reused...
    EXPECT_EQ(gen2, gen + 1);  // ...with a new generation
}

TEST(ChainAllocator, GenerationProtectsStaleListeners)
{
    ChainAllocator a(2);
    auto [id, gen] = a.alloc();
    a.free(id);
    // A membership holding (id, gen) must observe the mismatch.
    EXPECT_NE(a.generation(id), gen);
}

TEST(ChainAllocator, IsLiveTracksCurrentGeneration)
{
    ChainAllocator a(2);
    auto [id, gen] = a.alloc();
    EXPECT_TRUE(a.isLive(id, gen));
    a.free(id);
    EXPECT_FALSE(a.isLive(id, gen));
    auto [id2, gen2] = a.alloc();
    EXPECT_EQ(id2, id);
    EXPECT_TRUE(a.isLive(id2, gen2));
    EXPECT_FALSE(a.isLive(id, gen));
}

TEST(ChainAllocator, UnlimitedGrows)
{
    ChainAllocator a(-1);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_TRUE(a.available());
        a.alloc();
    }
    EXPECT_EQ(a.inUse(), 1000u);
    EXPECT_EQ(a.peak(), 1000u);
}

TEST(ChainAllocator, PeakTracksHighWaterMark)
{
    ChainAllocator a(8);
    std::vector<ChainId> ids;
    for (int i = 0; i < 5; ++i)
        ids.push_back(a.alloc().first);
    for (ChainId id : ids)
        a.free(id);
    a.alloc();
    EXPECT_EQ(a.peak(), 5u);
    EXPECT_EQ(a.inUse(), 1u);
}

TEST(ChainAllocator, DoubleFreeUnderflowPanics)
{
    ChainAllocator a(2);
    auto [id, gen] = a.alloc();
    (void)gen;
    a.free(id);
    EXPECT_THROW(a.free(id), PanicError);
}
