/** @file Tests for the text assembler and disassembler. */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/disassembler.hh"
#include "isa/functional_core.hh"

using namespace sciq;

TEST(Assembler, BasicProgram)
{
    Program p = assemble(R"(
        addi r1, r0, 5
        addi r2, r0, 7
        add r3, r1, r2
        halt
    )");
    ASSERT_EQ(p.size(), 4u);
    FunctionalCore core(p);
    core.run();
    EXPECT_EQ(core.reg(intReg(3)), 12u);
}

TEST(Assembler, LabelsAndBranches)
{
    Program p = assemble(R"(
        addi r1, r0, 10
        addi r2, r0, 0
    loop:
        add r2, r2, r1
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    )");
    FunctionalCore core(p);
    core.run();
    EXPECT_EQ(core.reg(intReg(2)), 55u);  // 10+9+...+1
}

TEST(Assembler, MemoryOperandsAndDirectives)
{
    Program p = assemble(R"(
        .base 0x4000
        .words 0x8000 11 22 33
        .doubles 0x9000 2.5
        lui r1, 2          # 2 << 14 = 0x8000
        ld r2, 8(r1)
        lui r3, 2
        ori r3, r3, 0x1000 # 0x9000
        fld f1, 0(r3)
        fadd f2, f1, f1
        st r2, 24(r1)
        halt
    )");
    EXPECT_EQ(p.base(), 0x4000u);
    FunctionalCore core(p);
    core.run();
    EXPECT_EQ(core.reg(intReg(2)), 22u);
    EXPECT_DOUBLE_EQ(core.fregAsDouble(2), 5.0);
    EXPECT_EQ(core.memory().read(0x8018, 8), 22u);
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p = assemble(R"(
        # full line comment

        nop   # trailing comment
        halt
    )");
    EXPECT_EQ(p.size(), 2u);
}

TEST(Assembler, NumericBranchOffsets)
{
    Program p = assemble(R"(
        beq r0, r0, 2
        nop
        halt
    )");
    EXPECT_EQ(p.instructions()[0].imm, 2);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble("nop\nbogus r1, r2\n");
        FAIL() << "no error raised";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line(), 2u);
    }
}

TEST(Assembler, ErrorCases)
{
    EXPECT_THROW(assemble("add r1, r2"), AsmError);          // operand count
    EXPECT_THROW(assemble("add r1, r2, r99"), AsmError);     // bad register
    EXPECT_THROW(assemble("addi r1, r2, lots"), AsmError);   // bad imm
    EXPECT_THROW(assemble("ld r1, 8[r2]"), AsmError);        // bad mem syntax
    EXPECT_THROW(assemble("bne r1, r0, nowhere\n"), AsmError);
    EXPECT_THROW(assemble("x: nop\nx: nop\n"), AsmError);    // dup label
    EXPECT_THROW(assemble("addi r1, r0, 999999"), AsmError); // imm range
    EXPECT_THROW(assemble(".doubles zzz 1.0"), AsmError);
    EXPECT_THROW(assemble("nop\n.base 0x100\n"), AsmError);  // base after code
}

TEST(Assembler, StoreOperandOrder)
{
    Program p = assemble("st r7, -16(r3)\nhalt\n");
    const Instruction &st = p.instructions()[0];
    EXPECT_EQ(st.rs2, intReg(7));
    EXPECT_EQ(st.rs1, intReg(3));
    EXPECT_EQ(st.imm, -16);
}

TEST(Assembler, JumpForms)
{
    Program p = assemble(R"(
        jal r31, func
        halt
    func:
        jr r31
    )");
    EXPECT_EQ(p.instructions()[0].op, Opcode::JAL);
    EXPECT_EQ(p.instructions()[0].imm, 2);
    FunctionalCore core(p);
    core.run();
    EXPECT_TRUE(core.halted());
}

TEST(Disassembler, FormatsMatchAssemblerSyntax)
{
    const char *source = "add r3, r1, r2";
    Program p = assemble(std::string(source) + "\nhalt\n");
    EXPECT_EQ(disassemble(p.instructions()[0]), source);
}

class AsmDisasmRoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(AsmDisasmRoundTrip, ReassemblesToSameEncoding)
{
    const std::string line = GetParam();
    Program p1 = assemble(line + "\n");
    const std::string printed = disassemble(p1.instructions()[0]);
    Program p2 = assemble(printed + "\n");
    EXPECT_TRUE(p1.instructions()[0] == p2.instructions()[0])
        << line << " -> " << printed;
}

INSTANTIATE_TEST_SUITE_P(
    Lines, AsmDisasmRoundTrip,
    ::testing::Values("add r3, r1, r2", "addi r1, r2, -5",
                      "lui r4, 100", "mul r5, r6, r7",
                      "fadd f1, f2, f3", "fsqrt f4, f5",
                      "fcvtif f1, r2", "fcvtfi r2, f1",
                      "ld r1, 8(r2)", "fld f3, -24(r9)",
                      "st r1, 0(r2)", "fst f1, 16(r2)", "sw r3, 4(r4)",
                      "beq r1, r2, 5", "bltu r3, r4, -2", "j 3",
                      "jal r31, 2", "jr r31", "jalr r31, r5", "nop",
                      "halt"));
