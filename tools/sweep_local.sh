#!/bin/sh
# Launch a local distributed sweep: one sweep_serve coordinator plus a
# small worker fleet on this machine (DESIGN.md §17/§18).
#
#   tools/sweep_local.sh [-b build_dir] [-w workers] [-k kill_idx] \
#                        [-K] [-d ckpt_dir] -- <sweep_serve args...>
#
#   -b DIR   build tree holding examples/sweep_serve (default ./build)
#   -w N     worker processes to start (default 3)
#   -k IDX   chaos mode: kill -9 worker IDX once the coordinator's
#            journal shows progress (requires journal= in the serve
#            args); the victim's exit status is ignored
#   -K       chaos mode: kill -9 the COORDINATOR once its journal
#            shows progress, then restart it on the same endpoint and
#            journal; the surviving workers reconnect and redeliver
#            (requires journal= in the serve args)
#   -d DIR   shared ckpt_dir= handed to every worker
#
# The serve args must include socket=PATH or listen=HOST:PORT (workers
# connect to it; listen= needs an explicit port, not 0).
# Exit status: the (final) coordinator's, unless a non-victim worker
# failed.
set -eu

build=./build
workers=3
kill_idx=""
kill_coord=""
ckpt_dir=""

while getopts "b:w:k:Kd:" opt; do
  case "$opt" in
    b) build=$OPTARG ;;
    w) workers=$OPTARG ;;
    k) kill_idx=$OPTARG ;;
    K) kill_coord=1 ;;
    d) ckpt_dir=$OPTARG ;;
    *) echo "usage: $0 [-b dir] [-w n] [-k idx] [-K] [-d ckpt_dir]" \
            "-- args" >&2
       exit 2 ;;
  esac
done
shift $((OPTIND - 1))

socket=""
listen=""
journal=""
for arg in "$@"; do
  case "$arg" in
    socket=*) socket=${arg#socket=} ;;
    listen=*) listen=${arg#listen=} ;;
    journal=*) journal=${arg#journal=} ;;
  esac
done
if [ -z "$socket" ] && [ -z "$listen" ]; then
  echo "sweep_local: socket=PATH or listen=HOST:PORT must be among" \
       "the sweep_serve args" >&2
  exit 2
fi
if [ -n "$listen" ]; then
  case "$listen" in
    *:0)
      echo "sweep_local: listen= needs an explicit port (workers must" \
           "know where to connect)" >&2
      exit 2 ;;
  esac
fi
if { [ -n "$kill_idx" ] || [ -n "$kill_coord" ]; } &&
   [ -z "$journal" ]; then
  echo "sweep_local: -k/-K need journal= among the sweep_serve args" \
       "(used to wait for sweep progress before killing)" >&2
  exit 2
fi

"$build/examples/sweep_serve" "$@" &
serve_pid=$!

if [ -n "$socket" ]; then
  # Workers retry their connect during startup, but waiting for the
  # socket here keeps the timeline readable and catches a coordinator
  # that died on bad arguments immediately.
  tries=0
  while [ ! -S "$socket" ]; do
    if ! kill -0 "$serve_pid" 2>/dev/null; then
      echo "sweep_local: coordinator exited before listening" >&2
      wait "$serve_pid" || exit $?
      exit 1
    fi
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
      echo "sweep_local: coordinator socket never appeared" >&2
      kill "$serve_pid" 2>/dev/null || true
      exit 1
    fi
    sleep 0.1
  done
else
  # TCP: no filesystem artifact to wait on; give the bind a moment and
  # catch an argument error, then rely on the workers' connect retry.
  sleep 0.3
  if ! kill -0 "$serve_pid" 2>/dev/null; then
    echo "sweep_local: coordinator exited before listening" >&2
    wait "$serve_pid" || exit $?
    exit 1
  fi
fi

pids=""
w=1
while [ "$w" -le "$workers" ]; do
  if [ -n "$socket" ]; then
    endpoint="socket=$socket"
  else
    endpoint="connect=$listen"
  fi
  if [ -n "$ckpt_dir" ]; then
    "$build/examples/sweep_worker" "$endpoint" "name=w$w" \
        "ckpt_dir=$ckpt_dir" &
  else
    "$build/examples/sweep_worker" "$endpoint" "name=w$w" &
  fi
  pids="$pids $w:$!"
  w=$((w + 1))
done

if [ -n "$kill_idx" ] || [ -n "$kill_coord" ]; then
  # Wait for at least one journaled result so the victim dies mid-sweep
  # (possibly holding a lease / an unacked result), not before doing
  # anything.
  tries=0
  while [ ! -s "$journal" ] && [ "$tries" -le 600 ]; do
    tries=$((tries + 1))
    sleep 0.1
  done
fi

if [ -n "$kill_coord" ]; then
  # The §18 availability drill: SIGKILL the coordinator mid-sweep (the
  # journal rows written so far are fsync'd), restart it on the same
  # endpoint + journal, and let the workers' reconnect loops find it.
  echo "sweep_local: kill -9 coordinator (pid $serve_pid)"
  kill -9 "$serve_pid" 2>/dev/null || true
  wait "$serve_pid" 2>/dev/null || true
  "$build/examples/sweep_serve" "$@" &
  serve_pid=$!
fi

if [ -n "$kill_idx" ]; then
  victim=""
  for entry in $pids; do
    case "$entry" in
      "$kill_idx":*) victim=${entry#*:} ;;
    esac
  done
  if [ -n "$victim" ]; then
    echo "sweep_local: kill -9 worker $kill_idx (pid $victim)"
    kill -9 "$victim" 2>/dev/null || true
  else
    echo "sweep_local: -k $kill_idx: no such worker" >&2
  fi
fi

status=0
for entry in $pids; do
  idx=${entry%%:*}
  pid=${entry#*:}
  rc=0
  wait "$pid" || rc=$?
  if [ "$rc" -ne 0 ] && [ "$idx" != "$kill_idx" ]; then
    if [ -n "$kill_coord" ]; then
      # A worker orphaned at the end of a -K run is expected: if the
      # restarted coordinator finished the sweep (with this worker's
      # lost job redone elsewhere) before the worker re-handshook, the
      # worker cannot distinguish that from a dead coordinator and
      # exits nonzero.  Output correctness is gated by the caller's
      # byte-identity compare, not by the orphan's exit status.
      echo "sweep_local: worker $idx exited $rc (tolerated under -K)"
    else
      echo "sweep_local: worker $idx failed (exit $rc)" >&2
      status=1
    fi
  fi
done

wait "$serve_pid" || status=$?
exit "$status"
