/**
 * @file
 * Shared fault-containment plumbing for sweep job execution: exception
 * classification through the error taxonomy, Failed/Timeout result
 * rows, and failure-artifact persistence (DESIGN.md §13).  Used by both
 * the per-job path (sweep.cc) and the batched lockstep path (batch.cc)
 * so a contained failure looks identical however the job was executed.
 */

#ifndef SCIQ_SIM_JOB_EXEC_HH
#define SCIQ_SIM_JOB_EXEC_HH

#include <exception>
#include <filesystem>
#include <fstream>
#include <new>
#include <string>

#include "common/errors.hh"
#include "common/logging.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

namespace sciq {
namespace job_exec {

/** The in-flight exception, classified through the taxonomy. */
struct Classified
{
    ErrorCode code = ErrorCode::Internal;
    bool transient = false;
    bool timeout = false;
    std::string message;
    std::string context;  ///< captured state dump, if the error had one
};

inline Classified
classify(std::exception_ptr ep)
{
    Classified c;
    try {
        std::rethrow_exception(ep);
    } catch (const DeadlockError &e) {
        c.code = e.code();
        c.timeout = e.isTimeout();
        c.message = e.what();
        c.context = e.context();
    } catch (const SimError &e) {
        c.code = e.code();
        c.transient = e.transient();
        c.message = e.what();
        c.context = e.context();
    } catch (const std::bad_alloc &) {
        c.code = ErrorCode::Resource;
        c.message = "out of memory";
    } catch (const PanicError &e) {
        // Unclassified panic (SCIQ_ASSERT): an internal invariant.
        c.code = ErrorCode::Invariant;
        c.message = e.what();
    } catch (const FatalError &e) {
        c.code = ErrorCode::Config;
        c.message = e.what();
    } catch (const std::exception &e) {
        c.message = e.what();
    } catch (...) {
        c.message = "unknown exception";
    }
    return c;
}

/** A Failed/Timeout row: config identity, zero stats, the outcome. */
inline RunResult
failedResult(const SimConfig &config, const Classified &c, unsigned attempts)
{
    RunResult r;
    r.workload = config.workload;
    r.iqKind = iqKindName(config.core.iqKind);
    r.iqSize = config.core.iq.numEntries;
    r.chains = config.core.iqKind == IqKind::Segmented
                   ? config.core.iq.maxChains
                   : -1;
    r.outcome.status = c.timeout ? JobOutcome::Status::Timeout
                                 : JobOutcome::Status::Failed;
    r.outcome.code = c.code;
    r.outcome.message = c.message;
    r.outcome.attempts = attempts;
    return r;
}

/**
 * Persist a failure's captured context (e.g. the watchdog's pipeline
 * dump) under the artifact directory.  Best-effort: artifact I/O
 * trouble must never turn a contained failure into a fatal one.
 */
inline void
writeArtifact(const std::string &dir, std::size_t index,
              const Classified &c, const std::string &key)
{
    if (dir.empty() || c.context.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/job" + std::to_string(index) + "-" +
                             errorCodeName(c.code) + ".dump";
    std::ofstream out(path);
    if (!out) {
        warn("cannot write failure artifact '%s'", path.c_str());
        return;
    }
    out << "sweep key: " << key << "\nerror: " << c.message << "\n\n"
        << c.context;
    inform("wrote failure artifact %s", path.c_str());
}

} // namespace job_exec
} // namespace sciq

#endif // SCIQ_SIM_JOB_EXEC_HH
