#include "hierarchy.hh"

namespace sciq {

MemHierarchy::MemHierarchy(const HierarchyParams &params)
    : statsGroup("mem")
{
    mem = std::make_unique<MainMemory>(params.memory, events);
    l2 = std::make_unique<Cache>(params.l2, *mem, events);
    l1i = std::make_unique<Cache>(params.l1i, *l2, events);
    l1d = std::make_unique<Cache>(params.l1d, *l2, events);

    statsGroup.addChild(&l1i->statGroup());
    statsGroup.addChild(&l1d->statGroup());
    statsGroup.addChild(&l2->statGroup());
    statsGroup.addChild(&mem->statGroup());
}

void
MemHierarchy::flushAll()
{
    l1i->flush();
    l1d->flush();
    l2->flush();
}

} // namespace sciq
