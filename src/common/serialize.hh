/**
 * @file
 * Binary serialization primitives for the checkpoint subsystem.
 *
 * A Writer appends fixed-width little-endian fields to an in-memory
 * buffer; a Reader consumes the same encoding with strict bounds
 * checking (every truncation or tag mismatch throws serial::Error with
 * a message naming the offset).  Components implement
 * `save(serial::Writer &)` / `restore(serial::Reader &)` pairs against
 * these primitives; the versioned container format lives one layer up
 * in sim/checkpoint.{hh,cc}.
 */

#ifndef SCIQ_COMMON_SERIALIZE_HH
#define SCIQ_COMMON_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

namespace sciq {
namespace serial {

/** Malformed/truncated stream.  Checkpoint layers wrap it with context. */
class Error : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Incremental FNV-1a (64-bit) used for content keys and trailers. */
class Fnv64
{
  public:
    void
    update(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            state ^= p[i];
            state *= 0x100000001b3ULL;
        }
    }

    void
    update(std::uint64_t v)
    {
        std::uint8_t bytes[8];
        for (unsigned i = 0; i < 8; ++i)
            bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
        update(bytes, 8);
    }

    void update(std::string_view s) { update(s.data(), s.size()); }

    std::uint64_t digest() const { return state; }

  private:
    std::uint64_t state = 0xcbf29ce484222325ULL;
};

inline std::uint64_t
fnv1a(const void *data, std::size_t len)
{
    Fnv64 h;
    h.update(data, len);
    return h.digest();
}

/** Append-only little-endian encoder over a std::string buffer. */
class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (unsigned i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    bytes(const void *data, std::size_t len)
    {
        buf.append(static_cast<const char *>(data), len);
    }

    /** Length-prefixed string. */
    void
    str(std::string_view s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        bytes(s.data(), s.size());
    }

    /** 4-character section marker ("L1D_", "BPRD", ...). */
    void
    tag(const char (&t)[5])
    {
        bytes(t, 4);
    }

    const std::string &buffer() const { return buf; }
    std::string take() { return std::move(buf); }
    std::size_t size() const { return buf.size(); }

  private:
    std::string buf;
};

/** Bounds-checked little-endian decoder over a borrowed buffer. */
class Reader
{
  public:
    explicit Reader(std::string_view data_) : data(data_) {}

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(data[pos++]);
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        for (unsigned i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(u8()) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(u8()) << (8 * i);
        return v;
    }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    void
    bytes(void *out, std::size_t len)
    {
        need(len);
        std::memcpy(out, data.data() + pos, len);
        pos += len;
    }

    std::string
    str()
    {
        const std::uint32_t len = u32();
        need(len);
        std::string s(data.substr(pos, len));
        pos += len;
        return s;
    }

    /** Consume a 4-character section marker; mismatch is an Error. */
    void
    expectTag(const char (&t)[5])
    {
        need(4);
        if (data.compare(pos, 4, t, 4) != 0) {
            throw Error("expected section '" + std::string(t) +
                        "' at offset " + std::to_string(pos) + ", found '" +
                        std::string(data.substr(pos, 4)) + "'");
        }
        pos += 4;
    }

    std::size_t offset() const { return pos; }
    std::size_t remaining() const { return data.size() - pos; }

  private:
    void
    need(std::size_t n)
    {
        if (data.size() - pos < n) {
            throw Error("truncated stream: need " + std::to_string(n) +
                        " bytes at offset " + std::to_string(pos) +
                        ", have " + std::to_string(data.size() - pos));
        }
    }

    std::string_view data;
    std::size_t pos = 0;
};

} // namespace serial
} // namespace sciq

#endif // SCIQ_COMMON_SERIALIZE_HH
