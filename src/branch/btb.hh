/**
 * @file
 * Branch target buffer: 4K entries, 4-way set associative (Table 1).
 * In this simulator direct targets are computable at fetch, so the BTB
 * primarily serves indirect jumps (JR/JALR); it is modelled in full so
 * the misprediction behaviour of indirect-heavy codes is realistic.
 */

#ifndef SCIQ_BRANCH_BTB_HH
#define SCIQ_BRANCH_BTB_HH

#include <cstdint>
#include <vector>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace sciq {

class Btb
{
  public:
    explicit Btb(unsigned entries = 4096, unsigned assoc = 4)
        : numSets(entries / assoc), ways(assoc), statsGroup("btb"),
          table(entries)
    {
        SCIQ_ASSERT(isPowerOf2(numSets), "BTB set count must be pow2");
        statsGroup.addScalar("lookups", &lookups, "BTB lookups");
        statsGroup.addScalar("hits", &hits, "BTB hits");
    }

    /** @return true and fill `target` on a hit. */
    bool
    lookup(Addr pc, Addr &target)
    {
        lookups.inc();
        Entry *e = find(pc);
        if (!e)
            return false;
        hits.inc();
        e->lastUse = ++useClock;
        target = e->target;
        return true;
    }

    /** Install/refresh a mapping (at commit of a taken control inst). */
    void
    update(Addr pc, Addr target)
    {
        if (Entry *e = find(pc)) {
            e->target = target;
            e->lastUse = ++useClock;
            return;
        }
        const std::size_t set = setIndex(pc);
        Entry *victim = nullptr;
        for (unsigned w = 0; w < ways; ++w) {
            Entry &cand = table[set * ways + w];
            if (!cand.valid) {
                victim = &cand;
                break;
            }
            if (!victim || cand.lastUse < victim->lastUse)
                victim = &cand;
        }
        victim->valid = true;
        victim->pc = pc;
        victim->target = target;
        victim->lastUse = ++useClock;
    }

    /** Serialize the table, LRU clock and statistics counters. */
    void
    save(serial::Writer &w) const
    {
        w.u64(table.size());
        for (const Entry &e : table) {
            w.u8(e.valid ? 1 : 0);
            w.u64(e.pc);
            w.u64(e.target);
            w.u64(e.lastUse);
        }
        w.u64(useClock);
        w.f64(lookups.value());
        w.f64(hits.value());
    }

    /** Restore a snapshot; the entry count must match (serial::Error). */
    void
    restore(serial::Reader &r)
    {
        const std::uint64_t n = r.u64();
        if (n != table.size()) {
            throw serial::Error("BTB size mismatch: snapshot " +
                                std::to_string(n) + ", configured " +
                                std::to_string(table.size()));
        }
        for (Entry &e : table) {
            e.valid = r.u8() != 0;
            e.pc = r.u64();
            e.target = r.u64();
            e.lastUse = r.u64();
        }
        useClock = r.u64();
        lookups.set(r.f64());
        hits.set(r.f64());
    }

    stats::Group &statGroup() { return statsGroup; }

    stats::Scalar lookups;
    stats::Scalar hits;

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
        std::uint64_t lastUse = 0;
    };

    std::size_t setIndex(Addr pc) const
    {
        return (pc >> 2) & (numSets - 1);
    }

    Entry *
    find(Addr pc)
    {
        const std::size_t set = setIndex(pc);
        for (unsigned w = 0; w < ways; ++w) {
            Entry &e = table[set * ways + w];
            if (e.valid && e.pc == pc)
                return &e;
        }
        return nullptr;
    }

    std::size_t numSets;
    unsigned ways;
    stats::Group statsGroup;
    std::vector<Entry> table;
    std::uint64_t useClock = 0;
};

} // namespace sciq

#endif // SCIQ_BRANCH_BTB_HH
