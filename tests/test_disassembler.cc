/** @file Disassembler coverage across every opcode and format. */

#include <gtest/gtest.h>

#include "isa/asm_builder.hh"
#include "isa/assembler.hh"
#include "isa/disassembler.hh"

using namespace sciq;

TEST(Disassembler, RegisterNames)
{
    EXPECT_EQ(regName(intReg(0)), "r0");
    EXPECT_EQ(regName(intReg(31)), "r31");
    EXPECT_EQ(regName(fpReg(0)), "f0");
    EXPECT_EQ(regName(fpReg(31)), "f31");
    EXPECT_EQ(regName(kInvalidReg), "-");
}

TEST(Disassembler, MemoryOperandFormat)
{
    Instruction ld;
    ld.op = Opcode::LD;
    ld.rd = intReg(3);
    ld.rs1 = intReg(4);
    ld.imm = -8;
    EXPECT_EQ(disassemble(ld), "ld r3, -8(r4)");

    Instruction st;
    st.op = Opcode::FST;
    st.rs2 = fpReg(2);
    st.rs1 = intReg(5);
    st.imm = 16;
    EXPECT_EQ(disassemble(st), "fst f2, 16(r5)");
}

TEST(Disassembler, ProgramListingHasPcs)
{
    AsmBuilder b(0x3000);
    b.nop().halt();
    std::string listing = disassemble(b.build());
    EXPECT_NE(listing.find("0x3000"), std::string::npos);
    EXPECT_NE(listing.find("0x3004"), std::string::npos);
    EXPECT_NE(listing.find("nop"), std::string::npos);
    EXPECT_NE(listing.find("halt"), std::string::npos);
}

/**
 * Property: for every opcode, disassembling a representative
 * instruction and reassembling the text yields the same instruction.
 */
class DisasmAllOpcodes : public ::testing::TestWithParam<unsigned> {};

TEST_P(DisasmAllOpcodes, RoundTripsThroughAssembler)
{
    const auto op = static_cast<Opcode>(GetParam());
    Instruction inst;
    inst.op = op;
    switch (opInfo(op).format) {
      case Format::R:
        inst.rd = intReg(1);
        inst.rs1 = intReg(2);
        inst.rs2 = intReg(3);
        if (opInfo(op).opClass == OpClass::FpAdd ||
            opInfo(op).opClass == OpClass::FpMul ||
            opInfo(op).opClass == OpClass::FpDiv) {
            inst.rs1 = fpReg(2);
            inst.rs2 = fpReg(3);
            if (op != Opcode::FCMPEQ && op != Opcode::FCMPLT &&
                op != Opcode::FCMPLE) {
                inst.rd = fpReg(1);
            }
        }
        break;
      case Format::I:
        inst.rd = intReg(1);
        inst.rs1 = intReg(2);
        inst.imm = -5;
        if (op == Opcode::FSQRT || op == Opcode::FNEG ||
            op == Opcode::FABS || op == Opcode::FMOV) {
            inst.rd = fpReg(1);
            inst.rs1 = fpReg(2);
            inst.imm = 0;
        } else if (op == Opcode::FCVTIF) {
            inst.rd = fpReg(1);
            inst.imm = 0;
        } else if (op == Opcode::FCVTFI) {
            inst.rs1 = fpReg(2);
            inst.imm = 0;
        }
        break;
      case Format::M:
        if (opInfo(op).opClass == OpClass::MemWrite)
            inst.rs2 = op == Opcode::FST ? fpReg(2) : intReg(2);
        else
            inst.rd = op == Opcode::FLD ? fpReg(2) : intReg(2);
        inst.rs1 = intReg(3);
        inst.imm = 24;
        break;
      case Format::B:
        inst.rs1 = intReg(1);
        inst.rs2 = intReg(2);
        inst.imm = 3;
        break;
      case Format::J:
        inst.rd = op == Opcode::J ? kInvalidReg : intReg(31);
        inst.imm = 2;
        break;
      case Format::JR:
        inst.rd = op == Opcode::JR ? kInvalidReg : intReg(31);
        inst.rs1 = intReg(7);
        break;
      case Format::N:
        break;
    }

    const std::string text = disassemble(inst);
    Program reparsed = assemble(text + "\n");
    EXPECT_TRUE(reparsed.instructions()[0] == inst)
        << opInfo(op).mnemonic << ": '" << text << "'";
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, DisasmAllOpcodes,
                         ::testing::Range(0u, kNumOpcodes));
