/**
 * @file
 * Deterministic seeded fault injection (DESIGN.md §13).
 *
 * Generalizes the auditor's `audit_inject_overpromote` idea into a
 * small menu of faults that each target one detection/recovery path so
 * negative tests can prove the path actually fires:
 *
 *   - checkpoint-blob corruption   -> trailer checksum rejection, and
 *     either the cache's warn+repair path or a sweep-level retry
 *   - transient disk-write failure -> transient CheckpointError, eaten
 *     by the sweep runner's bounded retry
 *   - forced IQ over-promotion     -> auditor promotion-bound violation
 *     (aliases IqParams::auditInjectOverPromote)
 *   - artificial commit stall      -> watchdog DeadlockError with a
 *     pipeline state dump (CoreParams::faultCommitStallAt)
 *
 * Budgeted faults (`corruptCkptReads`, `failDiskWrites`) count down
 * atomically: a budget of 1 faults exactly the first attempt and lets
 * the retry succeed; -1 faults every attempt (exhausting retries).
 * The injector is shared via shared_ptr across a job's retries so the
 * budget spans them.  Corruption is seeded so a faulted run is exactly
 * reproducible.
 *
 * Chaos faults for the distributed service (DESIGN.md §18) use
 * fire-at-Nth semantics instead: `abortWorker = N` kills the worker at
 * its Nth finished job, `abortCoordinator = N` kills the coordinator
 * at the Nth journaled result, `dropConnection = N` severs the worker
 * connection at its Nth result send.  At-N (not first-N) placement is
 * what lets a seeded chaos trial plant a crash anywhere in the sweep,
 * not just at its start; -1 still means "every opportunity".
 */

#ifndef SCIQ_SIM_FAULT_INJECTOR_HH
#define SCIQ_SIM_FAULT_INJECTOR_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "common/random.hh"

namespace sciq {

class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed = 1) : seed_(seed) {}

    /** Remaining checkpoint reads to corrupt (-1 = every read). */
    std::atomic<std::int64_t> corruptCkptReads{0};

    /** Remaining checkpoint writes to fail (-1 = every write). */
    std::atomic<std::int64_t> failDiskWrites{0};

    /**
     * Abort the worker at its Nth finished job (-1 = every job): the
     * distributed worker (shard.cc) dies in place of sending its
     * finished result - the lease stays outstanding, so the
     * coordinator's lease-expiry/EOF requeue path has to recover the
     * job.  Chaos coverage for DESIGN.md §17.
     */
    std::atomic<std::int64_t> abortWorker{0};

    /**
     * Abort the coordinator at the Nth journaled result (-1 = every
     * result).  Fires *after* the journal row is durably recorded and
     * before the ack, modelling the worst crash point: a restarted
     * coordinator must resume from the journal and the worker must
     * redeliver its unacked result (DESIGN.md §18).
     */
    std::atomic<std::int64_t> abortCoordinator{0};

    /**
     * Sever the worker connection at its Nth result send (-1 = every
     * send): the result is buffered, the worker reconnects with its
     * stable ID and redelivers; the coordinator's first-result-wins
     * merge dedups if the original actually arrived.
     */
    std::atomic<std::int64_t> dropConnection{0};

    /** True when the next checkpoint read should be corrupted. */
    bool takeCorruptRead() { return take(corruptCkptReads, corrupted_); }

    /** True when the next checkpoint write should fail. */
    bool takeDiskWriteFault() { return take(failDiskWrites, failed_); }

    /** True when the worker should abort instead of reporting. */
    bool takeWorkerAbort() { return takeAt(abortWorker, aborted_); }

    /** True when the coordinator should abort instead of acking. */
    bool takeCoordAbort() { return takeAt(abortCoordinator, coordAborts_); }

    /** True when the worker should sever instead of sending. */
    bool takeConnDrop() { return takeAt(dropConnection, connDrops_); }

    /**
     * Deterministically flip bytes in `blob` (seeded by the injector's
     * seed and the count of corruptions so far, so repeated faults
     * differ from each other but never between runs).  Flipping any
     * byte breaks the FNV-1a trailer, so restore must reject the blob.
     */
    void
    corrupt(std::string &blob) const
    {
        if (blob.empty())
            return;
        Random rng(seed_ + corrupted_.load(std::memory_order_relaxed));
        for (int i = 0; i < 8; ++i) {
            const std::size_t pos = rng.below(blob.size());
            blob[pos] = static_cast<char>(
                blob[pos] ^ static_cast<char>(1 + rng.below(255)));
        }
    }

    // Observability for tests and artifact reports.
    std::uint64_t corruptedReads() const { return corrupted_.load(); }
    std::uint64_t failedWrites() const { return failed_.load(); }
    std::uint64_t workerAborts() const { return aborted_.load(); }
    std::uint64_t coordAborts() const { return coordAborts_.load(); }
    std::uint64_t connDrops() const { return connDrops_.load(); }
    std::uint64_t seed() const { return seed_; }

  private:
    static bool
    take(std::atomic<std::int64_t> &budget, std::atomic<std::uint64_t> &count)
    {
        std::int64_t cur = budget.load(std::memory_order_relaxed);
        while (true) {
            if (cur == 0)
                return false;
            if (cur < 0)
                break;  // unlimited: no decrement
            if (budget.compare_exchange_weak(cur, cur - 1,
                                             std::memory_order_relaxed))
                break;
        }
        count.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    /** Fire exactly at the Nth call (countdown reaching 1); -1 = every. */
    static bool
    takeAt(std::atomic<std::int64_t> &counter,
           std::atomic<std::uint64_t> &count)
    {
        std::int64_t cur = counter.load(std::memory_order_relaxed);
        while (true) {
            if (cur == 0)
                return false;
            if (cur < 0) {
                count.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
            if (counter.compare_exchange_weak(cur, cur - 1,
                                              std::memory_order_relaxed)) {
                if (cur == 1) {
                    count.fetch_add(1, std::memory_order_relaxed);
                    return true;
                }
                return false;
            }
        }
    }

    std::uint64_t seed_;
    mutable std::atomic<std::uint64_t> corrupted_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::uint64_t> aborted_{0};
    std::atomic<std::uint64_t> coordAborts_{0};
    std::atomic<std::uint64_t> connDrops_{0};
};

} // namespace sciq

#endif // SCIQ_SIM_FAULT_INJECTOR_HH
