# Empty dependencies file for test_functional_core.
# This may be replaced when dependencies are built.
