#include "config.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "logging.hh"

namespace sciq {

ConfigMap
ConfigMap::fromArgs(int argc, const char *const *argv)
{
    ConfigMap cfg;
    for (int i = 1; i < argc; ++i) {
        std::string tok(argv[i]);
        if (!cfg.parseLine(tok))
            cfg.args.push_back(tok);
    }
    return cfg;
}

bool
ConfigMap::parseLine(const std::string &line)
{
    auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    set(line.substr(0, eq), line.substr(eq + 1));
    return true;
}

void
ConfigMap::set(const std::string &key, const std::string &value)
{
    values[key] = value;
}

bool
ConfigMap::has(const std::string &key) const
{
    return values.count(key) > 0;
}

std::string
ConfigMap::getString(const std::string &key, const std::string &def) const
{
    auto it = values.find(key);
    return it == values.end() ? def : it->second;
}

std::int64_t
ConfigMap::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values.find(key);
    if (it == values.end())
        return def;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not an integer", key.c_str(),
              it->second.c_str());
    return v;
}

std::int64_t
ConfigMap::getCount(const std::string &key, std::int64_t def) const
{
    auto it = values.find(key);
    if (it == values.end())
        return def;
    const std::string &raw = it->second;

    long double mult = 0;
    switch (raw.empty() ? '\0' : raw.back()) {
      case 'k': case 'K': mult = 1e3L; break;
      case 'm': case 'M': mult = 1e6L; break;
      case 'g': case 'G': mult = 1e9L; break;
      default: return getInt(key, def);  // plain integer, hex included
    }

    const std::string body = raw.substr(0, raw.size() - 1);
    // Restrict the suffixed body to plain decimal: strtold alone would
    // also accept hex floats ("0x10k"), "inf" and "nan", which are
    // never intended counts and the hex case silently parses to a
    // wildly different value than the 0x prefix suggests.
    bool decimal = !body.empty();
    bool seen_digit = false;
    for (std::size_t i = 0; i < body.size() && decimal; ++i) {
        const char ch = body[i];
        if (ch >= '0' && ch <= '9')
            seen_digit = true;
        else if (!((ch == '+' || ch == '-') && i == 0) && ch != '.')
            decimal = false;
    }
    char *end = nullptr;
    const long double v =
        decimal && seen_digit ? std::strtold(body.c_str(), &end) : 0;
    if (!decimal || !seen_digit || end == body.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not a count (expected e.g. "
              "300m, 1.5g)", key.c_str(), raw.c_str());
    const long double scaled = v * mult;
    if (scaled < 0 || scaled != std::floor(scaled))
        fatal("config key '%s': '%s' does not scale to a non-negative "
              "integer", key.c_str(), raw.c_str());
    if (scaled > static_cast<long double>(
            std::numeric_limits<std::int64_t>::max()))
        fatal("config key '%s': '%s' overflows a 64-bit count",
              key.c_str(), raw.c_str());
    return static_cast<std::int64_t>(scaled);
}

double
ConfigMap::getDouble(const std::string &key, double def) const
{
    auto it = values.find(key);
    if (it == values.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not a number", key.c_str(),
              it->second.c_str());
    return v;
}

bool
ConfigMap::getBool(const std::string &key, bool def) const
{
    auto it = values.find(key);
    if (it == values.end())
        return def;
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(), ::tolower);
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("config key '%s': '%s' is not a boolean", key.c_str(),
          it->second.c_str());
}

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    // Classic two-row Wagner-Fischer; option names are short, so the
    // quadratic cost is irrelevant.
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    std::iota(prev.begin(), prev.end(), std::size_t{0});
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t subst =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

std::string
closestKey(const std::string &key, const std::vector<std::string> &known)
{
    const std::size_t cutoff = std::max<std::size_t>(2, key.size() / 3);
    std::string best;
    std::size_t bestDist = cutoff + 1;
    for (const std::string &candidate : known) {
        const std::size_t d = editDistance(key, candidate);
        if (d < bestDist) {
            bestDist = d;
            best = candidate;
        }
    }
    return best;
}

std::string
ConfigMap::unknownKeyMessage(const std::vector<std::string> &known) const
{
    for (const auto &[key, value] : values) {
        if (std::find(known.begin(), known.end(), key) != known.end())
            continue;
        std::string msg = "unknown option '" + key + "'";
        const std::string suggestion = closestKey(key, known);
        if (!suggestion.empty())
            msg += " (did you mean '" + suggestion + "'?)";
        return msg;
    }
    return "";
}

} // namespace sciq
