file(REMOVE_RECURSE
  "CMakeFiles/test_functional_core.dir/test_functional_core.cc.o"
  "CMakeFiles/test_functional_core.dir/test_functional_core.cc.o.d"
  "test_functional_core"
  "test_functional_core.pdb"
  "test_functional_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_functional_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
