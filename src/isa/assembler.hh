/**
 * @file
 * Text assembler for SRV.  Accepts one instruction per line, labels
 * ("name:"), '#' comments and simple data directives:
 *
 *   .base 0x1000            set the code base address (before any code)
 *   .doubles 0x8000 1.0 2.5 lay down IEEE doubles at an address
 *   .words 0x9000 1 2 3     lay down 64-bit integers
 *
 * Branch targets may be labels or literal instruction offsets.
 */

#ifndef SCIQ_ISA_ASSEMBLER_HH
#define SCIQ_ISA_ASSEMBLER_HH

#include <stdexcept>
#include <string>

#include "isa/program.hh"

namespace sciq {

/** Error raised on malformed assembly input. */
class AsmError : public std::runtime_error
{
  public:
    AsmError(unsigned line, const std::string &msg)
        : std::runtime_error("line " + std::to_string(line) + ": " + msg),
          lineNo(line)
    {
    }

    unsigned line() const { return lineNo; }

  private:
    unsigned lineNo;
};

/** Assemble a complete source string into a Program. */
Program assemble(const std::string &source,
                 const std::string &name = "asm");

} // namespace sciq

#endif // SCIQ_ISA_ASSEMBLER_HH
