file(REMOVE_RECURSE
  "CMakeFiles/test_hmp_lrp.dir/test_hmp_lrp.cc.o"
  "CMakeFiles/test_hmp_lrp.dir/test_hmp_lrp.cc.o.d"
  "test_hmp_lrp"
  "test_hmp_lrp.pdb"
  "test_hmp_lrp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hmp_lrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
