/**
 * @file
 * Deterministic xorshift PRNG so experiments are exactly reproducible
 * across runs and platforms (no dependence on libstdc++'s distributions).
 */

#ifndef SCIQ_COMMON_RANDOM_HH
#define SCIQ_COMMON_RANDOM_HH

#include <cstdint>

namespace sciq {

/** xorshift128+ generator with convenience helpers. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding avoids the all-zero state.
        std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
        for (auto *s : {&s0, &s1}) {
            z += 0x9e3779b97f4a7c15ULL;
            std::uint64_t x = z;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
            *s = x ^ (x >> 31);
        }
        if (s0 == 0 && s1 == 0)
            s1 = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0;
        const std::uint64_t y = s1;
        s0 = y;
        x ^= x << 23;
        s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1 + y;
    }

    /** Uniform value in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw: true with probability p (0..1). */
    bool
    chance(double p)
    {
        return static_cast<double>(next() >> 11) *
                   (1.0 / 9007199254740992.0) < p;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t s0 = 1;
    std::uint64_t s1 = 2;
};

} // namespace sciq

#endif // SCIQ_COMMON_RANDOM_HH
