#include "fifo_iq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sciq {

FifoIq::FifoIq(const IqParams &params_, const Scoreboard &scoreboard_,
               const FuPool &fu_)
    : IqBase(params_, scoreboard_, fu_, "iq")
{
    fifos.resize(params.numFifos);
    statsGroup.addScalar("steered_behind_producer", &steeredBehindProducer,
                         "insts placed directly behind a producer");
    statsGroup.addScalar("steered_to_empty", &steeredToEmpty,
                         "insts placed at the head of an empty FIFO");
    statsGroup.addScalar("no_empty_fifo_stalls", &noEmptyFifoStalls,
                         "dispatch stalls waiting for an empty FIFO");
}

std::size_t
FifoIq::occupancy() const
{
    return totalOcc;
}

int
FifoIq::steer(const DynInstPtr &inst) const
{
    // Prefer a FIFO whose tail produces one of our pending operands.
    const auto srcs = inst->staticInst.srcRegs();
    for (int i = 0; i < 2; ++i) {
        if (srcs[i] == kInvalidReg)
            continue;
        if (inst->isStore() && i == 1)
            continue;
        const DynInstPtr &p = producer[srcs[i]];
        if (!p || p->squashed || p->issued)
            continue;
        for (std::size_t f = 0; f < fifos.size(); ++f) {
            if (!fifos[f].empty() && fifos[f].back() == p &&
                fifos[f].size() < params.fifoDepth) {
                return static_cast<int>(f);
            }
        }
    }
    // Otherwise an empty FIFO.
    for (std::size_t f = 0; f < fifos.size(); ++f) {
        if (fifos[f].empty())
            return static_cast<int>(f);
    }
    return -1;
}

bool
FifoIq::canInsert(const DynInstPtr &inst)
{
    if (steer(inst) < 0) {
        noEmptyFifoStalls.inc();
        dispatchStallsFull.inc();
        return false;
    }
    return true;
}

void
FifoIq::insert(const DynInstPtr &inst, Cycle)
{
    int f = steer(inst);
    SCIQ_ASSERT(f >= 0, "insert into FIFO IQ with no slot");
    if (fifos[static_cast<std::size_t>(f)].empty())
        steeredToEmpty.inc();
    else
        steeredBehindProducer.inc();
    inst->fifoId = f;
    fifos[static_cast<std::size_t>(f)].push_back(inst);
    ++totalOcc;
    instsInserted.inc();

    RegIndex dst = inst->staticInst.dstReg();
    if (dst != kInvalidReg)
        producer[dst] = inst;
}

void
FifoIq::issueSelect(Cycle, const TryIssue &try_issue)
{
    // Consider only FIFO heads, oldest first across FIFOs.
    std::vector<std::size_t> &ready = readyScratch;
    ready.clear();
    for (std::size_t f = 0; f < fifos.size(); ++f) {
        if (!fifos[f].empty() && operandsReady(*fifos[f].front()))
            ready.push_back(f);
    }
    std::sort(ready.begin(), ready.end(),
              [this](std::size_t a, std::size_t b) {
                  return fifos[a].front()->seq < fifos[b].front()->seq;
              });

    unsigned issued = 0;
    for (std::size_t f : ready) {
        if (issued >= params.issueWidth)
            break;
        DynInstPtr inst = fifos[f].front();
        if (!try_issue(inst))
            continue;  // structural hazard; another head may still go
        fifos[f].pop_front();
        --totalOcc;
        instsIssued.inc();
        ++issued;
    }
}

void
FifoIq::tick(Cycle, bool)
{
    occupancyAvg.sample(static_cast<double>(occupancy()));
}

void
FifoIq::squash(SeqNum youngest_kept)
{
    for (auto &f : fifos) {
        while (!f.empty() && f.back()->seq > youngest_kept) {
            f.pop_back();
            --totalOcc;
        }
    }
    for (auto &p : producer) {
        if (p && p->seq > youngest_kept)
            p = nullptr;
    }
}

} // namespace sciq
