# Empty compiler generated dependencies file for sciq_common.
# This may be replaced when dependencies are built.
