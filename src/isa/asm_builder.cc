#include "asm_builder.hh"

#include <bit>
#include <cstring>

#include "common/logging.hh"
#include "isa/codec.hh"

namespace sciq {

AsmBuilder &
AsmBuilder::label(const std::string &name)
{
    auto [it, inserted] = labels.emplace(name, insts.size());
    SCIQ_ASSERT(inserted, "duplicate label '%s'", name.c_str());
    (void)it;
    return *this;
}

AsmBuilder &
AsmBuilder::emit(const Instruction &inst)
{
    insts.push_back(inst);
    return *this;
}

AsmBuilder &
AsmBuilder::emitR(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    return emit(i);
}

AsmBuilder &
AsmBuilder::emitI(Opcode op, RegIndex rd, RegIndex rs1, std::int64_t imm)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    return emit(i);
}

AsmBuilder &
AsmBuilder::emitBranch(Opcode op, RegIndex rs1, RegIndex rs2,
                       const std::string &target)
{
    Instruction i;
    i.op = op;
    i.rs1 = rs1;
    i.rs2 = rs2;
    fixups.push_back({insts.size(), target});
    return emit(i);
}

// Integer ALU ---------------------------------------------------------------
AsmBuilder &AsmBuilder::add(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::ADD, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::sub(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::SUB, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::and_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::AND, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::or_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::OR, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::xor_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::XOR, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::sll(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::SLL, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::srl(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::SRL, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::sra(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::SRA, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::slt(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::SLT, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::sltu(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::SLTU, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::addi(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ return emitI(Opcode::ADDI, rd, rs1, imm); }
AsmBuilder &AsmBuilder::andi(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ return emitI(Opcode::ANDI, rd, rs1, imm); }
AsmBuilder &AsmBuilder::ori(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ return emitI(Opcode::ORI, rd, rs1, imm); }
AsmBuilder &AsmBuilder::xori(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ return emitI(Opcode::XORI, rd, rs1, imm); }
AsmBuilder &AsmBuilder::slti(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ return emitI(Opcode::SLTI, rd, rs1, imm); }
AsmBuilder &AsmBuilder::slli(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ return emitI(Opcode::SLLI, rd, rs1, imm); }
AsmBuilder &AsmBuilder::srli(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ return emitI(Opcode::SRLI, rd, rs1, imm); }
AsmBuilder &AsmBuilder::srai(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ return emitI(Opcode::SRAI, rd, rs1, imm); }

// Integer mul/div -------------------------------------------------------------
AsmBuilder &AsmBuilder::mul(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::MUL, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::mulh(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::MULH, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::div(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::DIV, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::rem(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::REM, rd, rs1, rs2); }

// Floating point --------------------------------------------------------------
AsmBuilder &AsmBuilder::fadd(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::FADD, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::fsub(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::FSUB, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::fmul(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::FMUL, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::fdiv(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::FDIV, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::fsqrt(RegIndex rd, RegIndex rs1)
{ return emitI(Opcode::FSQRT, rd, rs1, 0); }
AsmBuilder &AsmBuilder::fmin(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::FMIN, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::fmax(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::FMAX, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::fneg(RegIndex rd, RegIndex rs1)
{ return emitI(Opcode::FNEG, rd, rs1, 0); }
AsmBuilder &AsmBuilder::fabs_(RegIndex rd, RegIndex rs1)
{ return emitI(Opcode::FABS, rd, rs1, 0); }
AsmBuilder &AsmBuilder::fmov(RegIndex rd, RegIndex rs1)
{ return emitI(Opcode::FMOV, rd, rs1, 0); }
AsmBuilder &AsmBuilder::fcmpeq(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::FCMPEQ, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::fcmplt(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::FCMPLT, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::fcmple(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emitR(Opcode::FCMPLE, rd, rs1, rs2); }
AsmBuilder &AsmBuilder::fcvtif(RegIndex fd, RegIndex rs1)
{ return emitI(Opcode::FCVTIF, fd, rs1, 0); }
AsmBuilder &AsmBuilder::fcvtfi(RegIndex rd, RegIndex fs1)
{ return emitI(Opcode::FCVTFI, rd, fs1, 0); }

// Memory ----------------------------------------------------------------------
AsmBuilder &AsmBuilder::ld(RegIndex rd, RegIndex base, std::int64_t off)
{ return emitI(Opcode::LD, rd, base, off); }
AsmBuilder &AsmBuilder::lw(RegIndex rd, RegIndex base, std::int64_t off)
{ return emitI(Opcode::LW, rd, base, off); }
AsmBuilder &AsmBuilder::fld(RegIndex fd, RegIndex base, std::int64_t off)
{ return emitI(Opcode::FLD, fd, base, off); }

AsmBuilder &
AsmBuilder::st(RegIndex rs2, RegIndex base, std::int64_t off)
{
    Instruction i;
    i.op = Opcode::ST;
    i.rs2 = rs2;
    i.rs1 = base;
    i.imm = off;
    return emit(i);
}

AsmBuilder &
AsmBuilder::sw(RegIndex rs2, RegIndex base, std::int64_t off)
{
    Instruction i;
    i.op = Opcode::SW;
    i.rs2 = rs2;
    i.rs1 = base;
    i.imm = off;
    return emit(i);
}

AsmBuilder &
AsmBuilder::fst(RegIndex fs2, RegIndex base, std::int64_t off)
{
    Instruction i;
    i.op = Opcode::FST;
    i.rs2 = fs2;
    i.rs1 = base;
    i.imm = off;
    return emit(i);
}

// Control ----------------------------------------------------------------------
AsmBuilder &AsmBuilder::beq(RegIndex rs1, RegIndex rs2,
                            const std::string &t)
{ return emitBranch(Opcode::BEQ, rs1, rs2, t); }
AsmBuilder &AsmBuilder::bne(RegIndex rs1, RegIndex rs2,
                            const std::string &t)
{ return emitBranch(Opcode::BNE, rs1, rs2, t); }
AsmBuilder &AsmBuilder::blt(RegIndex rs1, RegIndex rs2,
                            const std::string &t)
{ return emitBranch(Opcode::BLT, rs1, rs2, t); }
AsmBuilder &AsmBuilder::bge(RegIndex rs1, RegIndex rs2,
                            const std::string &t)
{ return emitBranch(Opcode::BGE, rs1, rs2, t); }
AsmBuilder &AsmBuilder::bltu(RegIndex rs1, RegIndex rs2,
                             const std::string &t)
{ return emitBranch(Opcode::BLTU, rs1, rs2, t); }
AsmBuilder &AsmBuilder::bgeu(RegIndex rs1, RegIndex rs2,
                             const std::string &t)
{ return emitBranch(Opcode::BGEU, rs1, rs2, t); }

AsmBuilder &
AsmBuilder::j(const std::string &target)
{
    Instruction i;
    i.op = Opcode::J;
    fixups.push_back({insts.size(), target});
    return emit(i);
}

AsmBuilder &
AsmBuilder::jal(RegIndex rd, const std::string &target)
{
    Instruction i;
    i.op = Opcode::JAL;
    i.rd = rd;
    fixups.push_back({insts.size(), target});
    return emit(i);
}

AsmBuilder &
AsmBuilder::jr(RegIndex rs1)
{
    Instruction i;
    i.op = Opcode::JR;
    i.rs1 = rs1;
    return emit(i);
}

AsmBuilder &
AsmBuilder::jalr(RegIndex rd, RegIndex rs1)
{
    Instruction i;
    i.op = Opcode::JALR;
    i.rd = rd;
    i.rs1 = rs1;
    return emit(i);
}

// Misc / pseudo ------------------------------------------------------------------
AsmBuilder &
AsmBuilder::nop()
{
    Instruction i;
    i.op = Opcode::NOP;
    return emit(i);
}

AsmBuilder &
AsmBuilder::halt()
{
    Instruction i;
    i.op = Opcode::HALT;
    return emit(i);
}

AsmBuilder &
AsmBuilder::mov(RegIndex rd, RegIndex rs1)
{
    return addi(rd, rs1, 0);
}

AsmBuilder &
AsmBuilder::li(RegIndex rd, std::int64_t value)
{
    if (value >= kImm14Min && value <= kImm14Max)
        return addi(rd, kZeroReg, value);

    // Build the constant 13 bits at a time from the most significant
    // chunk down, so the ORI immediates are always non-negative.
    constexpr unsigned kChunk = 13;
    auto uval = static_cast<std::uint64_t>(value);
    unsigned top_bit = 63;
    while (top_bit > 0 && ((uval >> top_bit) & 1) == ((uval >> 63) & 1))
        --top_bit;
    unsigned sig_bits = top_bit + 2;  // bits needed incl. one sign bit
    unsigned chunks = (sig_bits + kChunk - 1) / kChunk;
    unsigned shift = (chunks - 1) * kChunk;

    // Top chunk via ADDI (sign-extended).
    std::int64_t top = value >> shift;
    addi(rd, kZeroReg, top);
    while (shift > 0) {
        shift -= kChunk;
        slli(rd, rd, kChunk);
        std::int64_t chunk =
            static_cast<std::int64_t>((uval >> shift) & ((1u << kChunk) - 1));
        if (chunk != 0)
            ori(rd, rd, chunk);
    }
    return *this;
}

AsmBuilder &
AsmBuilder::data(Addr addr, std::vector<std::uint8_t> bytes)
{
    blobs.push_back({addr, std::move(bytes)});
    return *this;
}

AsmBuilder &
AsmBuilder::doubles(Addr addr, const std::vector<double> &values)
{
    std::vector<std::uint8_t> bytes(values.size() * 8);
    for (std::size_t i = 0; i < values.size(); ++i) {
        auto raw = std::bit_cast<std::uint64_t>(values[i]);
        std::memcpy(&bytes[i * 8], &raw, 8);
    }
    return data(addr, std::move(bytes));
}

AsmBuilder &
AsmBuilder::words(Addr addr, const std::vector<std::uint64_t> &values)
{
    std::vector<std::uint8_t> bytes(values.size() * 8);
    for (std::size_t i = 0; i < values.size(); ++i)
        std::memcpy(&bytes[i * 8], &values[i], 8);
    return data(addr, std::move(bytes));
}

Program
AsmBuilder::build(const std::string &name)
{
    for (const auto &fx : fixups) {
        auto it = labels.find(fx.label);
        SCIQ_ASSERT(it != labels.end(), "undefined label '%s'",
                    fx.label.c_str());
        insts[fx.instIndex].imm =
            static_cast<std::int64_t>(it->second) -
            static_cast<std::int64_t>(fx.instIndex);
    }

    Program prog(baseAddr);
    prog.name = name;
    for (const auto &i : insts) {
        SCIQ_ASSERT(encodable(i), "instruction %zu not encodable",
                    static_cast<std::size_t>(&i - insts.data()));
        prog.append(i);
    }
    for (auto &b : blobs)
        prog.addData(b.addr, b.bytes);
    return prog;
}

} // namespace sciq
