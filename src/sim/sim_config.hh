/**
 * @file
 * Top-level simulation configuration: Table 1 processor parameters plus
 * the IQ design under test and the workload to run.
 */

#ifndef SCIQ_SIM_SIM_CONFIG_HH
#define SCIQ_SIM_SIM_CONFIG_HH

#include <memory>
#include <ostream>
#include <string>

#include "common/config.hh"
#include "core/ooo_core.hh"
#include "workload/workloads.hh"

namespace sciq {

class CheckpointCache;
class FaultInjector;

struct SimConfig
{
    CoreParams core{};
    std::string workload = "swim";
    WorkloadParams wl{};

    /** Safety cap so misconfigured runs terminate. */
    Cycle maxCycles = 20'000'000;

    /**
     * Wall-clock deadline for the timed run (key: `deadline_sec=`);
     * 0 disables.  Exceeding it throws a DeadlockError flagged as a
     * timeout, which the sweep runner records as JobOutcome::Timeout.
     * Implemented by chunking the core's run loop, which is
     * tick-for-tick identical to an unchunked run.
     */
    double deadlineSec = 0.0;

    /** Compare committed state against the functional simulator. */
    bool validate = true;

    /**
     * Attach the cycle-level invariant auditor (DESIGN.md section 9).
     * Violations accumulate under the `core.audit` stats group and in
     * RunResult::auditViolations.  Key: `audit=1`.
     */
    bool audit = false;

    /**
     * With the auditor attached, panic (with a state dump) at the first
     * violation instead of counting on.  Key: `audit_panic=1`.
     */
    bool auditPanic = false;

    /**
     * Skip this many instructions with functional warming before the
     * timed run (the paper's checkpoint methodology at our scale).
     * Count-valued keys accept k/m/g suffixes, so `ff=300m` works.
     */
    std::uint64_t fastForward = 0;

    /**
     * Use the basic-block cache for the functional paths (warming and
     * validation golden runs); `bb_cache=0` selects the step()-based
     * reference interpreter.  Results are bit-identical either way —
     * this is pure acceleration, kept switchable as a differential
     * check.
     */
    bool bbCache = true;

    // `iq_soa=0` likewise selects the segmented IQ's object-per-entry
    // reference engine over the default SoA engine (core.iq.soaLayout);
    // bit-identical, host speed only, excluded from sweep keys.

    /**
     * Explicit checkpoint file (key: `ckpt=`): restore the warm-up
     * from this file if it exists, otherwise fast-forward cold and
     * save it there.  Requires fastForward > 0.
     */
    std::string ckptFile;

    /**
     * Checkpoint cache directory (key: `ckpt_dir=`): warm-ups are
     * restored from / persisted to `<dir>/ckpt-<key>.sciqckpt`, keyed
     * by checkpointKeyHash().  Requires fastForward > 0.
     */
    std::string ckptDir;

    /**
     * Shared in-process checkpoint cache (programmatic; SweepBatch
     * installs one per sweep so each distinct warm-up runs once and
     * every other configuration restores it).  Takes precedence over
     * ckptDir: a cache constructed with a directory covers both.
     */
    std::shared_ptr<CheckpointCache> ckptCache;

    /**
     * Optional fault injector (keys: `fault_seed=`, `fault_ckpt_corrupt=`,
     * `fault_disk_fail=`; see fault_injector.hh).  Shared across a
     * job's retries so fault budgets span them.
     */
    std::shared_ptr<FaultInjector> faults;

    /**
     * Apply key=value overrides, e.g.
     *   iq=segmented iq_size=512 seg_size=32 chains=128 hmp=1 lrp=1
     *   workload=swim iters=4096
     */
    void apply(const ConfigMap &overrides);

    /** Print the Table 1 parameter block. */
    void printParameters(std::ostream &os) const;
};

/** Construct the configurations used throughout the evaluation. */
SimConfig makeIdealConfig(unsigned iq_size, const std::string &workload);
SimConfig makeSegmentedConfig(unsigned iq_size, int chains, bool hmp,
                              bool lrp, const std::string &workload);
SimConfig makePrescheduledConfig(unsigned total_slots,
                                 const std::string &workload);
SimConfig makeFifoConfig(unsigned fifos, unsigned depth,
                         const std::string &workload);

} // namespace sciq

#endif // SCIQ_SIM_SIM_CONFIG_HH
