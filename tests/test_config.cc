/** @file Unit tests for the key=value configuration store. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/logging.hh"

using namespace sciq;

TEST(ConfigMap, ParseFromArgs)
{
    const char *argv[] = {"prog", "iq_size=512", "workload=swim",
                          "positional", "hmp=true"};
    ConfigMap cfg = ConfigMap::fromArgs(5, argv);
    EXPECT_EQ(cfg.getInt("iq_size", 0), 512);
    EXPECT_EQ(cfg.getString("workload"), "swim");
    EXPECT_TRUE(cfg.getBool("hmp", false));
    ASSERT_EQ(cfg.positional().size(), 1u);
    EXPECT_EQ(cfg.positional()[0], "positional");
}

TEST(ConfigMap, DefaultsWhenAbsent)
{
    ConfigMap cfg;
    EXPECT_EQ(cfg.getInt("x", 7), 7);
    EXPECT_EQ(cfg.getString("y", "def"), "def");
    EXPECT_TRUE(cfg.getBool("z", true));
    EXPECT_DOUBLE_EQ(cfg.getDouble("w", 2.5), 2.5);
    EXPECT_FALSE(cfg.has("x"));
}

TEST(ConfigMap, BoolSpellings)
{
    ConfigMap cfg;
    for (const char *t : {"1", "true", "yes", "on", "TRUE", "On"}) {
        cfg.set("k", t);
        EXPECT_TRUE(cfg.getBool("k", false)) << t;
    }
    for (const char *f : {"0", "false", "no", "off", "False"}) {
        cfg.set("k", f);
        EXPECT_FALSE(cfg.getBool("k", true)) << f;
    }
}

TEST(ConfigMap, HexAndNegativeIntegers)
{
    ConfigMap cfg;
    cfg.set("a", "0x100");
    cfg.set("b", "-42");
    EXPECT_EQ(cfg.getInt("a", 0), 256);
    EXPECT_EQ(cfg.getInt("b", 0), -42);
}

TEST(ConfigMap, MalformedValuesFatal)
{
    ConfigMap cfg;
    cfg.set("a", "notanumber");
    EXPECT_THROW(cfg.getInt("a", 0), FatalError);
    EXPECT_THROW(cfg.getDouble("a", 0), FatalError);
    cfg.set("b", "maybe");
    EXPECT_THROW(cfg.getBool("b", false), FatalError);
}

TEST(ConfigMap, ParseLineRejectsMalformed)
{
    ConfigMap cfg;
    EXPECT_FALSE(cfg.parseLine("novalue"));
    EXPECT_FALSE(cfg.parseLine("=value"));
    EXPECT_TRUE(cfg.parseLine("k=v"));
    EXPECT_EQ(cfg.getString("k"), "v");
}

TEST(ConfigMap, LastSetWins)
{
    ConfigMap cfg;
    cfg.set("k", "1");
    cfg.set("k", "2");
    EXPECT_EQ(cfg.getInt("k", 0), 2);
}

TEST(EditDistance, ClassicCases)
{
    EXPECT_EQ(editDistance("", ""), 0u);
    EXPECT_EQ(editDistance("", "jobs"), 4u);
    EXPECT_EQ(editDistance("jobs", ""), 4u);
    EXPECT_EQ(editDistance("jobs", "jobs"), 0u);
    EXPECT_EQ(editDistance("jbos", "jobs"), 2u);   // transposition = 2 edits
    EXPECT_EQ(editDistance("iter", "iters"), 1u);  // insertion
    EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
}

TEST(ClosestKey, SuggestsNearMissesOnly)
{
    const std::vector<std::string> known = {"iters", "jobs", "bench_out",
                                            "workloads"};
    EXPECT_EQ(closestKey("iter", known), "iters");
    EXPECT_EQ(closestKey("job", known), "jobs");
    EXPECT_EQ(closestKey("bench_oot", known), "bench_out");
    // Nothing plausibly a typo: no suggestion.
    EXPECT_EQ(closestKey("zzzzzzzz", known), "");
}

TEST(ConfigMap, UnknownKeyMessage)
{
    const std::vector<std::string> known = {"iters", "jobs", "journal"};

    ConfigMap ok;
    ok.set("iters", "100");
    ok.set("jobs", "4");
    EXPECT_EQ(ok.unknownKeyMessage(known), "");

    ConfigMap typo;
    typo.set("jurnal", "x.jsonl");
    EXPECT_EQ(typo.unknownKeyMessage(known),
              "unknown option 'jurnal' (did you mean 'journal'?)");

    ConfigMap noSuggestion;
    noSuggestion.set("frobnicate_all", "1");
    EXPECT_EQ(noSuggestion.unknownKeyMessage(known),
              "unknown option 'frobnicate_all'");
}

TEST(ConfigMap, CountSuffixes)
{
    ConfigMap cfg;
    cfg.set("a", "300k");
    cfg.set("b", "2m");
    cfg.set("c", "2M");
    cfg.set("d", "1g");
    cfg.set("e", "1.5m");
    cfg.set("f", "0k");
    EXPECT_EQ(cfg.getCount("a", 0), 300'000);
    EXPECT_EQ(cfg.getCount("b", 0), 2'000'000);
    EXPECT_EQ(cfg.getCount("c", 0), 2'000'000);
    EXPECT_EQ(cfg.getCount("d", 0), 1'000'000'000);
    EXPECT_EQ(cfg.getCount("e", 0), 1'500'000);
    EXPECT_EQ(cfg.getCount("f", 1), 0);
}

TEST(ConfigMap, CountWithoutSuffixMatchesGetInt)
{
    ConfigMap cfg;
    cfg.set("plain", "12345");
    cfg.set("hex", "0x100");
    EXPECT_EQ(cfg.getCount("plain", 0), 12345);
    EXPECT_EQ(cfg.getCount("hex", 0), 256);
    EXPECT_EQ(cfg.getCount("absent", 77), 77);
}

TEST(ConfigMap, CountRejectsMalformed)
{
    ConfigMap cfg;
    for (const char *bad :
         {"12q", "k", "-2k", "1.5k5", "0.0001k", "99999999999g"}) {
        cfg.set("v", bad);
        EXPECT_THROW(cfg.getCount("v", 0), FatalError) << bad;
    }
}

TEST(ConfigMap, CountSuffixBodyMustBeDecimal)
{
    // Regression: the suffixed body used to go straight through
    // strtold, which accepts hex floats and inf/nan — "0x10k" parsed
    // as 16k rather than being rejected, and "infk"/"nank" slipped
    // through to absurd counts.  Suffixed bodies are decimal only;
    // plain hex integers (no suffix) still work via getInt.
    ConfigMap cfg;
    for (const char *bad : {"0x10k", "0X10m", "infk", "INFg", "nank",
                            "NANm", "1e3k", "0x1.8p3m", "+k", "-.g",
                            ".k", "++1k"}) {
        cfg.set("v", bad);
        EXPECT_THROW(cfg.getCount("v", 0), FatalError) << bad;
    }
    cfg.set("v", "0x100");
    EXPECT_EQ(cfg.getCount("v", 0), 256);  // unsuffixed hex unchanged
    cfg.set("v", "+1.5k");
    EXPECT_EQ(cfg.getCount("v", 0), 1500);  // explicit sign still fine
}
