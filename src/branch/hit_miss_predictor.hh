/**
 * @file
 * Dynamic cache hit/miss predictor (paper section 4.4): a PC-indexed
 * table of 4-bit saturating counters.  A counter is incremented on a
 * hit, cleared on a miss, and a *hit* is predicted only when the
 * counter exceeds 13 — very high confidence, because predicting a miss
 * as a hit floods segment 0 with unready instructions.
 */

#ifndef SCIQ_BRANCH_HIT_MISS_PREDICTOR_HH
#define SCIQ_BRANCH_HIT_MISS_PREDICTOR_HH

#include <limits>
#include <vector>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/sat_counter.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace sciq {

class HitMissPredictor
{
  public:
    explicit HitMissPredictor(unsigned entries = 4096,
                              unsigned threshold_ = 13)
        : threshold(threshold_), statsGroup("hmp"),
          table(entries, SatCounter(4, 0))
    {
        SCIQ_ASSERT(isPowerOf2(entries), "HMP size must be pow2");
        statsGroup.addScalar("predict_hit", &predictHitCount,
                             "loads predicted to hit");
        statsGroup.addScalar("predict_miss", &predictMissCount,
                             "loads predicted to miss");
        statsGroup.addScalar("hit_predicts_correct", &hitPredictsCorrect,
                             "predicted-hit loads that actually hit");
        statsGroup.addScalar("actual_hits", &actualHits,
                             "loads that actually hit in the L1");
    }

    /** Prediction without statistics side effects (for canInsert). */
    bool
    peekHit(Addr pc) const
    {
        return table[index(pc)].read() > threshold;
    }

    /** True if the load at `pc` is predicted to hit in the L1. */
    bool
    predictHit(Addr pc)
    {
        bool hit = table[index(pc)].read() > threshold;
        if (hit)
            predictHitCount.inc();
        else
            predictMissCount.inc();
        return hit;
    }

    /** Train with the actual outcome (delayed hits count as misses). */
    void
    update(Addr pc, bool was_hit)
    {
        if (was_hit)
            table[index(pc)].increment();
        else
            table[index(pc)].reset();
    }

    /** Record accuracy bookkeeping for the text-statistics bench. */
    void
    recordOutcome(bool predicted_hit, bool was_hit)
    {
        if (was_hit)
            actualHits.inc();
        if (predicted_hit && was_hit)
            hitPredictsCorrect.inc();
    }

    /**
     * Fraction of hit-predictions that were correct (paper: >98%).
     * NaN when nothing was predicted - a run with no HMP-eligible
     * loads has no accuracy, and reporting 1.0 would silently skew
     * cross-workload averages.  JSON emitters serialise it as null.
     */
    double
    hitAccuracy() const
    {
        double p = predictHitCount.value();
        return p > 0 ? hitPredictsCorrect.value() / p
                     : std::numeric_limits<double>::quiet_NaN();
    }

    /** Fraction of actual hits that were predicted as hits (~83%). */
    double
    hitCoverage() const
    {
        double h = actualHits.value();
        return h > 0 ? hitPredictsCorrect.value() / h
                     : std::numeric_limits<double>::quiet_NaN();
    }

    /** Serialize the counter table and statistics counters. */
    void
    save(serial::Writer &w) const
    {
        w.u64(table.size());
        for (const SatCounter &c : table)
            w.u8(static_cast<std::uint8_t>(c.read()));
        w.f64(predictHitCount.value());
        w.f64(predictMissCount.value());
        w.f64(hitPredictsCorrect.value());
        w.f64(actualHits.value());
    }

    /** Restore a snapshot; table size must match (serial::Error). */
    void
    restore(serial::Reader &r)
    {
        const std::uint64_t n = r.u64();
        if (n != table.size()) {
            throw serial::Error("HMP size mismatch: snapshot " +
                                std::to_string(n) + ", configured " +
                                std::to_string(table.size()));
        }
        for (SatCounter &c : table)
            c.set(r.u8());
        predictHitCount.set(r.f64());
        predictMissCount.set(r.f64());
        hitPredictsCorrect.set(r.f64());
        actualHits.set(r.f64());
    }

    stats::Group &statGroup() { return statsGroup; }

    stats::Scalar predictHitCount;
    stats::Scalar predictMissCount;
    stats::Scalar hitPredictsCorrect;
    stats::Scalar actualHits;

  private:
    std::size_t index(Addr pc) const
    {
        return (pc >> 2) & (table.size() - 1);
    }

    unsigned threshold;
    stats::Group statsGroup;
    std::vector<SatCounter> table;
};

} // namespace sciq

#endif // SCIQ_BRANCH_HIT_MISS_PREDICTOR_HH
