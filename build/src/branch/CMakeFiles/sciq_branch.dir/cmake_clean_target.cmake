file(REMOVE_RECURSE
  "libsciq_branch.a"
)
